"""The ingestion server: remote producers, sharded fronts, delta push.

:class:`IngestServer` is the network face of the parallel runtime.  It
listens on TCP and/or a Unix-domain socket for length-prefixed frames
(:mod:`repro.runtime.net.wire`) from two kinds of peers -- *producers*
streaming ``(trace_id, wire_record)`` rows and *subscribers* tailing
the delta feed -- and drives ``n_fronts`` independent ingestion fronts.

Architecture (three thread layers, no shared mutable fleet state):

- **asyncio loop thread**: owns the listeners, every connection, the
  producer bookkeeping (sequence numbers, acks) and the row router.
  Never touches a fleet.
- **front threads**, one per front: each owns one
  :class:`~repro.runtime.parallel.ParallelFleet` outright and consumes
  a FIFO queue of work items.  All fleet calls happen here.
- **worker threads/processes** under each fleet, as usual.

Sharded fronts
    Front ``f`` of ``n`` owns shard subset ``{s : s % n == f}`` of one
    global ``n_shards`` space and stamps global ingest ticks
    ``f+1, f+1+n, f+1+2n, ...`` (``tick_start``/``tick_step``), so the
    fronts partition both the trace space and the tick space.  Rows
    are routed by the same CRC32 ``shard_index_of`` the fleets
    themselves use; per-trace record order is preserved end to end
    (FIFO connection, FIFO front queue, FIFO worker inbox), so every
    per-trace ratio is bit-identical to a serial fleet over the same
    records, and violation rows carry globally unique ticks that merge
    into one deterministic ``(tick, trace id)`` order.

Exactly-once ingestion
    Producers number their ``produce`` frames.  The server tracks, per
    producer id, the highest sequence *enqueued* (``seen``; replays at
    or below it are dropped) and the highest sequence *fully absorbed
    in contiguous order* (``acked``; advertised in ``welcome`` and in
    ``ack`` frames).  A frame is acked only after every front holding
    one of its rows has returned from ``ingest_wire_many`` -- at which
    point the rows are inside fleet buffers (and, with durability on,
    the journal).  A reconnecting producer resumes from the server's
    ``acked`` and replays its unacked tail; ``seen`` deduplicates, so
    a frame is ingested exactly once no matter how often the
    connection dies around it.

Backpressure
    Producers hold at most ``credit_window`` unacked frames; the
    per-front queues are unbounded but their depth is bounded by
    ``credit_window x producers`` frames, and the fleets' bounded
    worker inboxes (``inbox_capacity``) gate the front threads
    themselves.  Slow workers therefore stall producers, not memory.

Producer protocol (client side in :mod:`repro.runtime.net.client`):

==========================================  ========================
frame                                        direction / meaning
==========================================  ========================
``("hello", ver, "produce", producer_id)``  first client frame
``("welcome", ver, n_fronts, n_shards,      server reply: resume
``  ``acked, credit_window)``               point + credit window
``("produce", seq, rows)``                  numbered row batch
``("produce", seq, cols, "cols")``          columnar batch: ``cols``
                                            is ``(trace_ids,
                                            wire_records)`` parallel
                                            columns (old frames keep
                                            decoding via ``*rest``)
``("ack", acked)``                          highest contiguous
                                            absorbed seq
``("bye",)``                                clean producer exit
``("error", message)``                      protocol failure
==========================================  ========================

Subscribers send ``("hello", ver, "subscribe", name)`` and then just
read: a ``snapshot`` frame, ``delta`` frames as ingestion progresses,
and ``end`` at shutdown (:mod:`repro.runtime.net.deltas`).

A third role, ``("hello", ver, "metrics", name)``, is a one-shot
telemetry scrape: the server answers ``("metrics", rows)`` -- the
latest staged instrument readings (see
:meth:`IngestServer.staged_metrics_rows`) -- and closes.  Answered
inline on the loop thread from the delta store's staged copy, so a
scrape never blocks on (or barriers) a front.  Delta frames also
carry the same readings as their fifth element, refreshed every
``metrics_interval`` seconds per front, so long-lived subscribers
get metrics pushed rather than polling.

The query surface (``worst_ratio``, ``violating_traces``,
``report()``, ...) marshals each call onto the owning front's thread,
so callers on any thread get the fleet's answers without data races.
"""

from __future__ import annotations

import asyncio
import logging
import queue
import threading
import time
import traceback
from fractions import Fraction
from typing import Any, Callable, Iterable

from repro.obs import metrics as _obs_metrics
from repro.runtime.net.deltas import DeltaStore
from repro.runtime.net.wire import (
    PROTOCOL_VERSION,
    ProtocolError,
    frame_bytes,
    read_frame,
)
from repro.runtime.parallel import ParallelFleet
from repro.runtime.shard import (
    FleetReport,
    TraceId,
    ratio_histogram,
    shard_index_of,
    top_k_riskiest,
)

__all__ = ["IngestServer"]

logger = logging.getLogger(__name__)


class _ProducerObs:
    """Per-producer ingest instruments (``producer`` label).

    All wall-clock shaped -- frame arrival, replay and dedup depend on
    the network -- so none are in the deterministic dump."""

    __slots__ = ("frames", "records", "credit")

    def __init__(
        self, registry: "_obs_metrics.MetricsRegistry", name: str
    ) -> None:
        labels = (("producer", name),)
        self.frames = registry.counter(
            "repro_net_produced_frames_total",
            labels,
            deterministic=False,
            help="produce frames accepted (replays excluded)",
        )
        self.records = registry.counter(
            "repro_net_produced_records_total",
            labels,
            deterministic=False,
            help="records accepted from this producer",
        )
        self.credit = registry.gauge(
            "repro_net_credit_inflight",
            labels,
            help="unacked produce frames (credit-window occupancy)",
        )


class _Producer:
    """Per-producer-id ingestion bookkeeping (survives reconnects)."""

    __slots__ = ("name", "seen", "acked", "completed", "writer", "obs")

    def __init__(
        self,
        name: str,
        registry: "_obs_metrics.MetricsRegistry | None" = None,
    ) -> None:
        self.name = name
        self.seen = 0  # highest seq ever enqueued (dedup floor)
        self.acked = 0  # highest contiguously absorbed seq
        self.completed: set[int] = set()  # absorbed above the ack line
        self.writer: asyncio.StreamWriter | None = None
        self.obs = (
            None if registry is None else _ProducerObs(registry, name)
        )


class _Front:
    """One ingestion front: a fleet plus the thread that owns it."""

    __slots__ = ("index", "fleet", "queue", "thread", "error", "metrics_at")

    def __init__(self, index: int, fleet: ParallelFleet) -> None:
        self.index = index
        self.fleet = fleet
        self.queue: queue.Queue[tuple] = queue.Queue()
        self.thread: threading.Thread | None = None
        self.error: str | None = None
        self.metrics_at = 0.0  # monotonic time of the last staging


def _label_rows(rows: Iterable[tuple], key: str, value: str) -> tuple:
    """Re-key serialized instrument rows with an extra label pair, so
    identically named instruments from different sources (fronts)
    stay distinct series instead of clobbering each other."""
    labeled = []
    for kind, name, labels, deterministic, payload, *rest in rows:
        new_labels = tuple(sorted((*labels, (key, value))))
        labeled.append(
            (kind, name, new_labels, deterministic, payload, *rest)
        )
    return tuple(labeled)


class IngestServer:
    """Network ingestion plane over ``n_fronts`` sharded fleet fronts.

    Args mirror :class:`~repro.runtime.parallel.ParallelFleet` where
    they configure the per-front fleets; ``event_budget`` is a global
    cap split evenly across fronts.  ``host``/``port`` open a TCP
    listener (``port=0`` picks a free port; ``host=None`` disables
    TCP), ``unix_path`` additionally/instead serves a Unix-domain
    socket.  ``credit_window`` is the max unacked frames advertised to
    each producer.  ``metrics_interval`` throttles how often each
    front's telemetry is staged into the delta stream (only relevant
    with ``REPRO_OBS`` on).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        *,
        n_fronts: int = 2,
        workers_per_front: int = 1,
        n_shards: int | None = None,
        host: str | None = "127.0.0.1",
        port: int = 0,
        unix_path: str | None = None,
        backend: str = "thread",
        start_method: str | None = None,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        compact_threshold: float | None = None,
        wire_batch: int = 256,
        inbox_capacity: int = 16,
        credit_window: int = 32,
        monitor_specs: Any = None,
        kernel: str | None = None,
        metrics_interval: float = 0.5,
    ) -> None:
        if n_fronts < 1:
            raise ValueError("need at least one front")
        if workers_per_front < 1:
            raise ValueError("need at least one worker per front")
        if credit_window < 1:
            raise ValueError("credit_window must be positive")
        if host is None and unix_path is None:
            raise ValueError("need a TCP host or a unix_path to listen on")
        if n_shards is None:
            n_shards = max(8, n_fronts * workers_per_front)
        if n_shards < n_fronts * workers_per_front:
            raise ValueError(
                f"{n_shards} shards cannot cover {n_fronts} fronts x "
                f"{workers_per_front} workers"
            )
        self._n_shards = n_shards
        self._host, self._port = host, port
        self._unix_path = unix_path
        self._credit_window = credit_window
        self._fronts: list[_Front] = []
        for f in range(n_fronts):
            share = None
            if event_budget is not None:
                share = event_budget // n_fronts + (
                    1 if f < event_budget % n_fronts else 0
                )
            fleet = ParallelFleet(
                xi,
                n_workers=workers_per_front,
                n_shards=n_shards,
                batch_size=batch_size,
                event_budget=share,
                auto_retire_after=auto_retire_after,
                compact_threshold=compact_threshold,
                backend=backend,
                start_method=start_method,
                wire_batch=wire_batch,
                inbox_capacity=inbox_capacity,
                monitor_specs=monitor_specs,
                kernel=kernel,
                shard_subset=tuple(
                    s for s in range(n_shards) if s % n_fronts == f
                ),
                tick_start=f + 1,
                tick_step=n_fronts,
            )
            self._fronts.append(_Front(f, fleet))
        self.deltas = DeltaStore()
        # The server's own registry (per-producer counters, credit
        # occupancy, subscriber gauge, front_accept spans); None keeps
        # every hook one attribute test when telemetry is off.
        self._metrics = _obs_metrics.registry_if_enabled()
        self._metrics_interval = metrics_interval
        self._accept_ns = (
            None
            if self._metrics is None
            else self._metrics.histogram(
                "repro_stage_ns",
                (("stage", "front_accept"),),
                help="per-stage record-lifecycle latency",
            )
        )
        self._subscribers_gauge = (
            None
            if self._metrics is None
            else self._metrics.gauge(
                "repro_net_subscribers",
                help="connected delta-stream subscribers",
            )
        )
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._unix_server: asyncio.AbstractServer | None = None
        self._producers: dict[str, _Producer] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight = 0  # dispatched produce frames not yet acked
        self._n_subscribers = 0
        self._publish_lock = threading.Lock()
        self._publish_scheduled = False
        self._state_lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "IngestServer":
        with self._state_lock:
            if self._started:
                raise RuntimeError("server already started")
            self._started = True
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._loop_thread = threading.Thread(
            target=run, name="ingest-loop", daemon=True
        )
        self._loop_thread.start()
        ready.wait()
        for front in self._fronts:
            front.thread = threading.Thread(
                target=self._front_loop,
                args=(front,),
                name=f"ingest-front-{front.index}",
                daemon=True,
            )
            front.thread.start()
        try:
            self._run_on_loop(self._open_listeners())
        except BaseException:
            self.stop()
            raise
        return self

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run_on_loop(self, coro: Any, timeout: float = 60.0) -> Any:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    async def _open_listeners(self) -> None:
        if self._host is not None:
            self._tcp_server = await asyncio.start_server(
                self._serve_conn, self._host, self._port
            )
            self.address = self._tcp_server.sockets[0].getsockname()[:2]
        if self._unix_path is not None:
            self._unix_server = await asyncio.start_unix_server(
                self._serve_conn, path=self._unix_path
            )

    def stop(self) -> None:
        """Drain and shut down: close listeners, absorb every dispatched
        frame, publish the final deltas, end the subscriber streams,
        stop the fronts, shut the fleets down."""
        with self._state_lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        self._stopping = True
        loop, alive = self._loop, self._loop_thread
        if loop is not None and alive is not None and alive.is_alive():
            # No new connections or frames, then wait out the in-flight.
            self._run_on_loop(self._close_network())
            self._wait(lambda: self._inflight == 0, timeout=120.0)
        # Final barrier per front so retirement/violations are final,
        # then final deltas (the call path stages them).
        for front in self._fronts:
            if front.thread is not None and front.thread.is_alive():
                try:
                    self._call(front, lambda fl: fl.flush())
                except Exception:  # pragma: no cover - crashed fleet
                    pass
        if loop is not None and alive is not None and alive.is_alive():
            self._run_on_loop(self._finish_stream())
            self._wait(lambda: self._n_subscribers == 0, timeout=10.0)
        else:
            self.deltas.close()
        for front in self._fronts:
            front.queue.put(("stop",))
        for front in self._fronts:
            if front.thread is not None:
                front.thread.join(timeout=60.0)
        for front in self._fronts:
            front.fleet.shutdown()
        if loop is not None and alive is not None and alive.is_alive():
            self._run_on_loop(self._drain_conn_tasks())
            loop.call_soon_threadsafe(loop.stop)
            alive.join(timeout=10.0)
        if loop is not None:
            loop.close()

    @staticmethod
    def _wait(done: Callable[[], bool], timeout: float) -> None:
        import time

        deadline = time.monotonic() + timeout
        while not done() and time.monotonic() < deadline:
            time.sleep(0.005)

    async def _close_network(self) -> None:
        for server in (self._tcp_server, self._unix_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        # Producer transports: closing them EOFs the read loops, so no
        # frame can be dispatched after this coroutine returns (both
        # run on the loop; the read loop sees the closing transport).
        for producer in self._producers.values():
            if producer.writer is not None:
                producer.writer.close()

    async def _finish_stream(self) -> None:
        # On the loop thread: a final publish of anything staged, then
        # end frames.  Subscriber pump tasks exit after sending "end".
        self.deltas.close()

    async def _drain_conn_tasks(self) -> None:
        # Let connection handlers run their finally blocks to the end
        # before the loop goes away; cancel any that linger.
        tasks = [t for t in self._conn_tasks if not t.done()]
        if not tasks:
            return
        _done, pending = await asyncio.wait(tasks, timeout=5.0)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.wait(pending, timeout=1.0)

    # ------------------------------------------------------------------
    # front threads
    # ------------------------------------------------------------------

    def _front_loop(self, front: _Front) -> None:
        fleet = front.fleet
        while True:
            item = front.queue.get()
            kind = item[0]
            if kind == "rows":
                _kind, rows, done = item
                try:
                    fleet.ingest_wire_many(rows)
                except Exception:  # keep the front alive; surface it
                    front.error = traceback.format_exc()
                    logger.error(
                        "ingest batch failed on front %d:\n%s",
                        front.index,
                        front.error,
                    )
                finally:
                    done()
                self._stage_deltas(front)
            elif kind == "cols":
                _kind, trace_ids, records, done = item
                try:
                    fleet.ingest_wire_columns(trace_ids, records)
                except Exception:  # keep the front alive; surface it
                    front.error = traceback.format_exc()
                    logger.error(
                        "columnar ingest batch failed on front %d:\n%s",
                        front.index,
                        front.error,
                    )
                finally:
                    done()
                self._stage_deltas(front)
            elif kind == "call":
                _kind, fn, box, event = item
                try:
                    box["value"] = fn(fleet)
                except BaseException as exc:
                    box["error"] = exc
                finally:
                    event.set()
                self._stage_deltas(front)
            elif kind == "stop":
                return

    def _stage_deltas(self, front: _Front) -> None:
        fleet = front.fleet
        updates = fleet.drain_ratio_updates()
        if updates:
            self.deltas.update_ratios(updates)
        self.deltas.extend_violations(fleet.violation_feed())
        if self._metrics is not None:
            # Periodic metrics staging (throttled per front): cumulative
            # readings ride the delta stream and answer "metrics"
            # request frames without touching any front thread.
            now = time.monotonic()
            if now - front.metrics_at >= self._metrics_interval:
                front.metrics_at = now
                self.deltas.update_metrics(
                    _label_rows(
                        fleet.metrics_rows(), "front", str(front.index)
                    )
                )
        if updates or self.deltas.dirty:
            self._schedule_publish()

    def _schedule_publish(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        with self._publish_lock:
            if self._publish_scheduled:
                return
            self._publish_scheduled = True
        try:
            loop.call_soon_threadsafe(self._publish_now)
        except RuntimeError:  # loop shut down under us
            with self._publish_lock:
                self._publish_scheduled = False

    def _publish_now(self) -> None:
        # Loop thread: sinks are subscriber queue puts, safe here.
        with self._publish_lock:
            self._publish_scheduled = False
        self.deltas.publish()

    # ------------------------------------------------------------------
    # connections (loop thread)
    # ------------------------------------------------------------------

    async def _send(
        self, writer: asyncio.StreamWriter, frame: tuple
    ) -> None:
        writer.write(frame_bytes(frame))
        await writer.drain()

    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            hello = await read_frame(reader)
            if hello is None:
                return
            if (
                not isinstance(hello, tuple)
                or len(hello) != 4
                or hello[0] != "hello"
            ):
                await self._send(writer, ("error", "expected hello"))
                return
            _kind, version, role, name = hello
            if version != PROTOCOL_VERSION:
                await self._send(
                    writer,
                    ("error", f"protocol {version} != {PROTOCOL_VERSION}"),
                )
                return
            if role == "produce":
                await self._serve_producer(str(name), reader, writer)
            elif role == "subscribe":
                await self._serve_subscriber(writer)
            elif role == "metrics":
                # One-shot: the latest staged readings (plus the
                # server's own registry), answered inline from the
                # loop thread -- no front round trip, no blocking.
                await self._send(
                    writer, ("metrics", self.staged_metrics_rows())
                )
            else:
                await self._send(writer, ("error", f"unknown role {role!r}"))
        except (ProtocolError, ConnectionError, OSError):
            pass  # dead or misbehaving peer; its state is resumable
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_producer(
        self,
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._stopping:
            await self._send(writer, ("error", "server is stopping"))
            return
        producer = self._producers.get(name)
        if producer is None:
            producer = self._producers[name] = _Producer(
                name, self._metrics
            )
        # Newest connection wins: preempt any stale one for this id.
        if producer.writer is not None:
            producer.writer.close()
        producer.writer = writer
        await self._send(
            writer,
            (
                "welcome",
                PROTOCOL_VERSION,
                len(self._fronts),
                self._n_shards,
                producer.acked,
                self._credit_window,
            ),
        )
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None or frame[0] == "bye":
                    return
                if frame[0] != "produce":
                    await self._send(
                        writer, ("error", f"unexpected {frame[0]!r}")
                    )
                    return
                # Forward-compatible decode, as for the spec frames:
                # old producers send ("produce", seq, rows); columnar
                # producers append a "cols" marker and ship the rows as
                # two parallel columns ``(trace_ids, wire_records)``.
                _kind, seq, rows, *rest = frame
                mode = rest[0] if rest else "rows"
                if mode not in ("rows", "cols"):
                    await self._send(
                        writer,
                        ("error", f"unknown produce mode {mode!r}"),
                    )
                    return
                if mode == "cols" and not (
                    isinstance(rows, tuple)
                    and len(rows) == 2
                    and len(rows[0]) == len(rows[1])
                ):
                    await self._send(
                        writer, ("error", "ragged columnar produce frame")
                    )
                    return
                if seq <= producer.seen:
                    continue  # replay of an already-enqueued frame
                if seq != producer.seen + 1:
                    await self._send(
                        writer,
                        (
                            "error",
                            f"sequence gap: expected {producer.seen + 1},"
                            f" got {seq}",
                        ),
                    )
                    return
                producer.seen = seq
                obs = producer.obs
                start = 0 if obs is None else time.perf_counter_ns()
                self._dispatch(producer, seq, rows, mode)
                if obs is not None:
                    self._accept_ns.observe(
                        time.perf_counter_ns() - start
                    )
                    obs.frames.inc()
                    obs.records.inc(
                        len(rows[0]) if mode == "cols" else len(rows)
                    )
                    obs.credit.set(producer.seen - producer.acked)
        finally:
            if producer.writer is writer:
                producer.writer = None

    def _dispatch(
        self,
        producer: _Producer,
        seq: int,
        rows: Iterable[tuple],
        mode: str = "rows",
    ) -> None:
        """Route a produce frame's rows to their fronts (loop thread).

        The ack for ``seq`` is released only once every front involved
        has absorbed its slice; per-front FIFO queues preserve the
        producer's per-trace row order.  Columnar frames
        (``mode == "cols"``) route the same way -- per-trace front
        assignment is row-shaped either way -- but each front's slice
        stays a pair of parallel columns, feeding the fleet's columnar
        ingest entry."""
        n_fronts, n_shards = len(self._fronts), self._n_shards
        self._inflight += 1
        if mode == "cols":
            trace_ids, records = rows
            by_cols: dict[int, tuple[list, list]] = {}
            for i, trace_id in enumerate(trace_ids):
                front_index = shard_index_of(trace_id, n_shards) % n_fronts
                slot = by_cols.get(front_index)
                if slot is None:
                    slot = by_cols[front_index] = ([], [])
                slot[0].append(trace_id)
                slot[1].append(records[i])
            items = [
                (index, ("cols", ids, recs))
                for index, (ids, recs) in by_cols.items()
            ]
        else:
            by_front: dict[int, list[tuple]] = {}
            for row in rows:
                front_index = shard_index_of(row[0], n_shards) % n_fronts
                by_front.setdefault(front_index, []).append(row)
            items = [
                (index, ("rows", front_rows))
                for index, front_rows in by_front.items()
            ]
        if not items:  # an empty frame still advances the seq line
            self._complete(producer, seq)
            return
        remaining = len(items)
        loop = self._loop
        assert loop is not None

        def absorbed() -> None:  # called from a front thread
            loop.call_soon_threadsafe(front_done)

        def front_done() -> None:  # back on the loop thread
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._complete(producer, seq)

        for front_index, payload in items:
            self._fronts[front_index].queue.put((*payload, absorbed))

    def _complete(self, producer: _Producer, seq: int) -> None:
        self._inflight -= 1
        producer.completed.add(seq)
        advanced = False
        while producer.acked + 1 in producer.completed:
            producer.completed.remove(producer.acked + 1)
            producer.acked += 1
            advanced = True
        if advanced and producer.obs is not None:
            producer.obs.credit.set(producer.seen - producer.acked)
        writer = producer.writer
        if advanced and writer is not None and not writer.is_closing():
            # write() only buffers; ack frames are tiny and the
            # transport flushes them without an explicit drain.
            writer.write(frame_bytes(("ack", producer.acked)))

    async def _serve_subscriber(
        self, writer: asyncio.StreamWriter
    ) -> None:
        frames: asyncio.Queue[tuple] = asyncio.Queue()
        sink = frames.put_nowait  # publishes happen on this loop
        self._n_subscribers += 1
        if self._subscribers_gauge is not None:
            self._subscribers_gauge.inc()
        snapshot = self.deltas.subscribe(sink)
        try:
            await self._send(writer, snapshot)
            while True:
                frame = await frames.get()
                await self._send(writer, frame)
                if frame[0] == "end":
                    return
        finally:
            self.deltas.unsubscribe(sink)
            self._n_subscribers -= 1
            if self._subscribers_gauge is not None:
                self._subscribers_gauge.dec()

    # ------------------------------------------------------------------
    # the marshaled query surface
    # ------------------------------------------------------------------

    def _call(
        self,
        front: _Front,
        fn: Callable[[ParallelFleet], Any],
        timeout: float = 60.0,
    ) -> Any:
        """Run ``fn(fleet)`` on the front's own thread and return its
        result -- the only safe way to query a front's fleet."""
        box: dict[str, Any] = {}
        event = threading.Event()
        front.queue.put(("call", fn, box, event))
        if not event.wait(timeout):
            raise TimeoutError(
                f"front {front.index} did not answer within {timeout}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _front_of(self, trace_id: TraceId) -> _Front:
        index = shard_index_of(trace_id, self._n_shards)
        return self._fronts[index % len(self._fronts)]

    @property
    def n_fronts(self) -> int:
        return len(self._fronts)

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def ingested_records(self) -> int:
        return sum(
            self._call(front, lambda fl: fl.ingested_records)
            for front in self._fronts
        )

    def front_errors(self) -> tuple[str, ...]:
        """Tracebacks of ingest batches that failed inside a front
        (empty in healthy operation; the rows of a failed batch are
        acked but lost, exactly like a crashed worker's tail)."""
        return tuple(f.error for f in self._fronts if f.error is not None)

    def flush(self) -> None:
        """Sync barrier on every front (violations fire, deltas cut)."""
        for front in self._fronts:
            self._call(front, lambda fl: fl.flush())

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        front = self._front_of(trace_id)
        return self._call(front, lambda fl: fl.worst_ratio(trace_id))

    def is_degraded(self, trace_id: TraceId) -> bool:
        front = self._front_of(trace_id)
        return self._call(front, lambda fl: fl.is_degraded(trace_id))

    def all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        out: list[tuple[TraceId, Fraction | None]] = []
        for front in self._fronts:
            out.extend(self._call(front, lambda fl: fl.all_ratios()))
        return out

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        return ratio_histogram(self.all_ratios())

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        return top_k_riskiest(self.all_ratios(), k)

    def violation_feed(self) -> tuple[tuple[int, TraceId], ...]:
        """All fronts' violation rows in one deterministic merged order
        (front ticks are disjoint, so a plain sort interleaves them
        exactly as a single fleet would have stamped them)."""
        rows: list[tuple[int, TraceId]] = []
        for front in self._fronts:
            rows.extend(self._call(front, lambda fl: fl.violation_feed()))
        return tuple(sorted(rows, key=lambda n: (n[0], str(n[1]))))

    def violating_traces(self) -> tuple[TraceId, ...]:
        self.flush()
        return tuple(
            dict.fromkeys(tid for _t, tid in self.violation_feed())
        )

    def report(self) -> FleetReport:
        """One merged :class:`FleetReport` across every front (sync
        barrier).  Counters sum; ``peak_live_events`` sums the fronts'
        epoch watermarks (a sound upper bound on the global peak);
        violating traces merge in global tick order."""
        reports = [
            self._call(front, lambda fl: fl.report())
            for front in self._fronts
        ]
        shards = sorted(
            (s for r in reports for s in r.shards), key=lambda s: s.shard
        )
        violating = tuple(
            dict.fromkeys(tid for _t, tid in self.violation_feed())
        )
        first = reports[0]
        return FleetReport(
            xi=first.xi,
            n_shards=self._n_shards,
            batch_size=first.batch_size,
            event_budget=sum(
                (r.event_budget or 0) for r in reports
            )
            or None,
            open_traces=sum(r.open_traces for r in reports),
            retired_traces=sum(r.retired_traces for r in reports),
            records=sum(r.records for r in reports),
            flushes=sum(r.flushes for r in reports),
            oracle_calls=sum(r.oracle_calls for r in reports),
            live_events=sum(r.live_events for r in reports),
            peak_live_events=sum(r.peak_live_events for r in reports),
            tombstoned_events=sum(r.tombstoned_events for r in reports),
            evictions=sum(r.evictions for r in reports),
            summary_compactions=sum(
                r.summary_compactions for r in reports
            ),
            summary_edges=sum(r.summary_edges for r in reports),
            auto_retired=sum(r.auto_retired for r in reports),
            budget_overruns=sum(r.budget_overruns for r in reports),
            degraded_traces=sum(r.degraded_traces for r in reports),
            violating_traces=violating,
            shards=tuple(shards),
            auto_compactions=sum(r.auto_compactions for r in reports),
            crashed_shards=tuple(
                s for r in reports for s in r.crashed_shards
            ),
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def staged_metrics_rows(self) -> tuple[tuple, ...]:
        """The latest *staged* readings -- what a ``metrics`` request
        frame is answered from: front rows last staged into the delta
        store (front-labeled) plus the server's own registry.  Never
        blocks on a front thread; may lag by ``metrics_interval``."""
        row_sets = [self.deltas.metrics_rows()]
        if self._metrics is not None:
            row_sets.append(self._metrics.to_rows())
        return _obs_metrics.merge_row_sets(row_sets)

    def metrics_rows(self) -> tuple[tuple, ...]:
        """Fresh merged readings: every front's fleet is polled on its
        own thread (each worker contributes its registry), rows are
        labeled ``front=<index>`` so identically named per-front
        instruments stay distinct series, and the server's own
        registry rides along.  Also refreshes the staged copy the
        delta stream and ``metrics`` frames serve."""
        for front in self._fronts:
            rows = self._call(front, lambda fl: fl.metrics_rows())
            self.deltas.update_metrics(
                _label_rows(rows, "front", str(front.index))
            )
        return self.staged_metrics_rows()

    def metrics_snapshot(self, *, deterministic_only: bool = False) -> dict:
        """Fresh merged readings as a JSON-able dict (the
        :meth:`repro.obs.metrics.MetricsRegistry.to_json` shape)."""
        return _obs_metrics.rows_to_json(
            self.metrics_rows(), deterministic_only=deterministic_only
        )

    def render_prometheus(self) -> str:
        """Fresh merged readings in Prometheus text exposition format
        (empty when telemetry is disabled)."""
        registry = _obs_metrics.MetricsRegistry()
        registry.merge_rows(self.metrics_rows())
        return registry.render_prometheus()

"""Stream framing for the network ingestion plane.

One frame format for the whole durability *and* network story:
``[length u32][crc32 u32][pickled payload]``, exactly the WAL format
of :mod:`repro.runtime.durable` (whose :func:`~repro.runtime.durable.
frame_bytes` is the single encoder).  A producer's wire frames and a
journal's frames are interchangeable bytes; the CRC turns a flipped
bit anywhere on the path into a clean :class:`ProtocolError` instead
of a silently corrupted monitor.

Payloads are pickled plain tuples (the codec discipline of
:mod:`repro.runtime.codec`).  Pickle over a socket means the transport
trusts its peers -- this plane is an *internal* service edge (producers
and dashboards inside one deployment), not an internet-facing API;
front it with authenticated transport if the network is not yours.

Two consumers of the same format live here: an asyncio reader for the
server side (:func:`read_frame`) and a small buffered blocking-socket
wrapper for the client side (:class:`FrameSocket`).
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import zlib
from typing import Any

from repro.runtime.durable import _HEADER, _MAX_FRAME, frame_bytes

__all__ = [
    "PROTOCOL_VERSION",
    "FrameSocket",
    "ProtocolError",
    "frame_bytes",
    "read_frame",
]

PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid frame, closed the
    stream mid-frame, or spoke the protocol out of order."""


async def read_frame(reader: asyncio.StreamReader) -> Any | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF *between* frames is the peer hanging up (normal); EOF inside a
    frame, an implausible length, or a CRC mismatch raises
    :class:`ProtocolError`.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ProtocolError("stream closed mid-frame header") from None
        return None
    length, crc = _HEADER.unpack(header)
    if length == 0 or length > _MAX_FRAME:
        raise ProtocolError(f"implausible frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("stream closed mid-frame payload") from None
    if zlib.crc32(payload) != crc:
        raise ProtocolError("frame CRC mismatch")
    return pickle.loads(payload)


class FrameSocket:
    """Framed messages over one blocking socket (the client side).

    Reads are buffered and *transactional*: a frame is consumed from
    the buffer only once it is complete, so a socket timeout mid-frame
    leaves the partial bytes buffered and the next call resumes them
    -- timeouts never corrupt framing.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = bytearray()

    def send(self, frame: Any) -> None:
        self.sock.sendall(frame_bytes(frame))

    def recv(self) -> Any | None:
        """One frame, or ``None`` on clean EOF.  Honors the socket's
        timeout setting (``socket.timeout`` propagates; in
        non-blocking mode an empty buffer raises ``BlockingIOError``).
        """
        while True:
            if len(self._buf) >= _HEADER.size:
                length, crc = _HEADER.unpack_from(self._buf, 0)
                if length == 0 or length > _MAX_FRAME:
                    raise ProtocolError(
                        f"implausible frame length {length}"
                    )
                total = _HEADER.size + length
                if len(self._buf) >= total:
                    payload = bytes(self._buf[_HEADER.size : total])
                    del self._buf[:total]
                    if zlib.crc32(payload) != crc:
                        raise ProtocolError("frame CRC mismatch")
                    return pickle.loads(payload)
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                if self._buf:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buf += chunk

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

"""Delta-streaming observability: publish changes, not snapshots.

The pull-side fleet surface (``worst_ratio_histogram``,
``top_k_riskiest``, ``violating_traces``) answers a query by touching
every worker -- a sync barrier per dashboard refresh.  At network
scale that inverts the cost model: the *monitor* ends up doing more
work serving dashboards than monitoring.  This module flips the
direction.  Fronts push the two incremental feeds the fleet already
produces for free -- worst-ratio updates (workers piggyback them on
every outbound message) and the violation feed -- into a
:class:`DeltaStore`, which streams numbered delta frames to
subscribers.  A subscriber folds them into a :class:`DeltaView` and
answers every aggregate query *locally*, from the stream alone.

Frames (plain tuples, like everything on this wire):

``("snapshot", seq, ratio_rows, violation_rows, metrics_rows)``
    full state at subscribe time; ``ratio_rows`` are ``(trace_id,
    wire_fraction)`` pairs, ``violation_rows`` are ``(tick,
    trace_id)`` pairs, ``metrics_rows`` are serialized instrument
    rows (:meth:`repro.obs.metrics.MetricsRegistry.to_rows`).
``("delta", seq, ratio_rows, violation_rows, metrics_rows)``
    what changed since ``seq - 1``: ratio rows are last-wins per
    trace, violation rows are new, metrics rows are last-wins per
    instrument (each row is a *cumulative* reading, not an
    increment, so last-wins loses nothing).
``("end", seq)``
    the publisher shut down; nothing follows.

Both sides decode with ``*rest`` tolerance: a view reading an older
publisher's four-element frames sees no metrics rows, and an older
view reading these frames ignores the fifth element.

Sequence numbers are contiguous per store, and a snapshot at ``seq``
is followed by deltas ``seq+1, seq+2, ...`` -- a view can therefore
*prove* it missed nothing (:class:`DeltaView` raises on a gap).

Correctness rests on two properties of the feeds: ratio updates are
monotone per trace (so last-wins coalescing loses nothing a final
value needs), and violation rows are immutable facts (so set-union
across deltas reconstructs the full feed).  Violation rows carry their
global ingest tick, which is what lets a view merge rows from several
interleaved fronts into the same deterministic ``(tick, trace id)``
order the fleets themselves report.
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Any, Callable, Iterable

from repro.obs import metrics as _obs_metrics
from repro.runtime import codec
from repro.runtime.shard import TraceId, ratio_histogram, top_k_riskiest

__all__ = ["DeltaStore", "DeltaView"]


def _metric_key(row: tuple) -> tuple:
    """Identity of a serialized instrument row: ``(kind, name, labels)``."""
    return (row[0], row[1], row[2])


class DeltaStore:
    """Thread-safe accumulator and publisher of delta frames.

    Writers (front threads) call :meth:`update_ratios` /
    :meth:`extend_violations`; the publisher thread calls
    :meth:`publish` to cut the staged changes into one numbered delta
    frame and fan it out to sinks.  :meth:`subscribe` registers a sink
    and returns its snapshot frame atomically -- no frame published
    after the snapshot can be missed, none before it can be duplicated.

    Sinks are called outside the lock but serially, from whichever
    thread publishes; a sink must be cheap and non-blocking (the server
    uses per-subscriber queue puts).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # full state (for snapshots); ratios kept in wire form so
        # frames need no re-encoding
        self._ratios: dict[TraceId, tuple[int, int] | None] = {}
        self._violations: list[tuple[int, TraceId]] = []
        self._seen_violations: set[tuple[int, TraceId]] = set()
        # metrics: cumulative instrument readings, last-wins per key
        self._metrics: dict[tuple, tuple] = {}
        # staged-but-unpublished changes
        self._pending_ratios: dict[TraceId, tuple[int, int] | None] = {}
        self._pending_violations: list[tuple[int, TraceId]] = []
        self._pending_metrics: dict[tuple, tuple] = {}
        self._seq = 0
        self._sinks: list[Callable[[tuple], None]] = []
        self._closed = False

    def update_ratios(
        self, updates: dict[TraceId, Fraction | None]
    ) -> None:
        """Stage worst-ratio changes (last-wins per trace)."""
        if not updates:
            return
        with self._lock:
            for trace_id, ratio in updates.items():
                wire = codec.encode_fraction(ratio)
                self._ratios[trace_id] = wire
                self._pending_ratios[trace_id] = wire

    def extend_violations(
        self, rows: Iterable[tuple[int, TraceId]]
    ) -> None:
        """Stage violation rows; duplicates (a feed is cumulative, so
        re-offering known rows is the normal case) are dropped."""
        with self._lock:
            for row in rows:
                if row not in self._seen_violations:
                    self._seen_violations.add(row)
                    self._violations.append(row)
                    self._pending_violations.append(row)

    def update_metrics(self, rows: Iterable[tuple]) -> None:
        """Stage instrument readings (last-wins per instrument).

        ``rows`` are serialized cumulative readings (the shape
        :meth:`repro.obs.metrics.MetricsRegistry.to_rows` emits), so a
        newer reading simply replaces the older one; rows from
        different sources (fronts, the server's own registry) coexist
        as long as their instrument names or labels differ."""
        with self._lock:
            for row in rows:
                key = _metric_key(row)
                if self._metrics.get(key) != row:
                    self._metrics[key] = row
                    self._pending_metrics[key] = row

    def metrics_rows(self) -> tuple[tuple, ...]:
        """The latest staged instrument readings, deterministically
        ordered (the rows a ``metrics`` request frame is answered
        from, without touching any front)."""
        with self._lock:
            rows = list(self._metrics.values())
        rows.sort(key=lambda row: (row[1], row[2], row[0]))
        return tuple(rows)

    @property
    def dirty(self) -> bool:
        """Whether staged changes are waiting for a :meth:`publish`."""
        with self._lock:
            return bool(
                self._pending_ratios
                or self._pending_violations
                or self._pending_metrics
            )

    def subscribe(self, sink: Callable[[tuple], None]) -> tuple:
        """Register ``sink`` and return its snapshot frame.  Atomic:
        the sink receives exactly the deltas after the snapshot."""
        with self._lock:
            if not self._closed:
                self._sinks.append(sink)
            snapshot = (
                "snapshot",
                self._seq,
                tuple(self._ratios.items()),
                tuple(self._violations),
                tuple(
                    sorted(
                        self._metrics.values(),
                        key=lambda row: (row[1], row[2], row[0]),
                    )
                ),
            )
            # On a closed store, hand the final state plus the end
            # marker the live stream would have delivered.
            end = ("end", self._seq) if self._closed else None
        if end is not None:
            sink(end)
        return snapshot

    def unsubscribe(self, sink: Callable[[tuple], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def publish(self) -> tuple | None:
        """Cut staged changes into one delta frame and fan it out.
        Returns the frame, or ``None`` if nothing was staged."""
        with self._lock:
            if (
                not self._pending_ratios
                and not self._pending_violations
                and not self._pending_metrics
            ):
                return None
            self._seq += 1
            frame = (
                "delta",
                self._seq,
                tuple(self._pending_ratios.items()),
                tuple(self._pending_violations),
                tuple(
                    sorted(
                        self._pending_metrics.values(),
                        key=lambda row: (row[1], row[2], row[0]),
                    )
                ),
            )
            self._pending_ratios = {}
            self._pending_violations = []
            self._pending_metrics = {}
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink(frame)
        return frame

    def close(self) -> tuple | None:
        """Publish anything still staged, then fan out the ``end``
        frame.  Idempotent; returns the end frame on the first call."""
        self.publish()
        with self._lock:
            if self._closed:
                return None
            self._closed = True
            frame = ("end", self._seq)
            sinks = tuple(self._sinks)
            self._sinks = []
        for sink in sinks:
            sink(frame)
        return frame


class DeltaView:
    """Fold a delta stream back into queryable fleet aggregates.

    Feed frames to :meth:`apply` (snapshot first, then each delta in
    order -- a gap in sequence numbers raises, so a view is either
    provably complete or loudly broken).  The aggregate methods then
    answer from local state using the *same* helper functions
    (:func:`~repro.runtime.shard.ratio_histogram`,
    :func:`~repro.runtime.shard.top_k_riskiest`) the fleets use, so a
    fully caught-up view reproduces the pull-side answers exactly.
    """

    def __init__(self) -> None:
        self.ratios: dict[TraceId, Fraction | None] = {}
        self._rows: list[tuple[int, TraceId]] = []
        self._seen: set[tuple[int, TraceId]] = set()
        self._metrics: dict[tuple, tuple] = {}
        self.seq = -1
        self.closed = False

    def apply(self, frame: Any) -> None:
        kind = frame[0]
        if kind == "snapshot":
            _kind, seq, ratio_rows, violation_rows, *rest = frame
            self.ratios = {
                trace_id: codec.decode_fraction(wire)
                for trace_id, wire in ratio_rows
            }
            self._rows = list(violation_rows)
            self._seen = set(violation_rows)
            self._metrics = (
                {_metric_key(row): row for row in rest[0]} if rest else {}
            )
            self.seq = seq
        elif kind == "delta":
            _kind, seq, ratio_rows, violation_rows, *rest = frame
            if self.seq < 0:
                raise ValueError("delta before snapshot")
            if seq != self.seq + 1:
                raise ValueError(
                    f"delta stream gap: have seq {self.seq}, got {seq}"
                )
            for trace_id, wire in ratio_rows:
                self.ratios[trace_id] = codec.decode_fraction(wire)
            for row in violation_rows:
                if row not in self._seen:
                    self._seen.add(row)
                    self._rows.append(row)
            if rest:
                for row in rest[0]:
                    self._metrics[_metric_key(row)] = row
            self.seq = seq
        elif kind == "end":
            self.seq = max(self.seq, frame[1])
            self.closed = True
        else:
            raise ValueError(f"unknown delta frame kind {kind!r}")

    # -- the reconstructed aggregate surface ---------------------------

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        return self.ratios[trace_id]

    def all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        return list(self.ratios.items())

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        return ratio_histogram(self.ratios.items())

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        return top_k_riskiest(self.ratios.items(), k)

    def violation_feed(self) -> tuple[tuple[int, TraceId], ...]:
        """All known violation rows in the deterministic merged order
        (fronts stamp disjoint global ticks, so sorting merges their
        interleaved feeds exactly as one fleet would have)."""
        return tuple(sorted(self._rows, key=lambda n: (n[0], str(n[1]))))

    def violating_traces(self) -> tuple[TraceId, ...]:
        return tuple(
            dict.fromkeys(tid for _t, tid in self.violation_feed())
        )

    def metrics_rows(self) -> tuple[tuple, ...]:
        """The latest instrument readings carried by the stream,
        deterministically ordered (empty from a pre-telemetry
        publisher or a telemetry-disabled server)."""
        rows = list(self._metrics.values())
        rows.sort(key=lambda row: (row[1], row[2], row[0]))
        return tuple(rows)

    def metrics_snapshot(self, *, deterministic_only: bool = False) -> dict:
        """The stream-carried metrics as a JSON-able dict (the
        :meth:`repro.obs.metrics.MetricsRegistry.to_json` shape)."""
        return _obs_metrics.rows_to_json(
            self.metrics_rows(), deterministic_only=deterministic_only
        )

"""Producer and subscriber clients for the ingestion server.

:class:`ProducerClient` streams records to an
:class:`~repro.runtime.net.server.IngestServer` with three guarantees:

- **Exactly-once**: every shipped batch carries a sequence number and
  is held in a replay buffer until the server acks it.  On reconnect
  the client resumes at the server's advertised ack point -- frames
  the server already absorbed are dropped client-side (and deduped
  server-side), unacked frames are resent in order.
- **Order**: one blocking socket, frames shipped in sequence order,
  replays in sequence order.  Per-trace record order -- the thing
  per-trace bit-identity rests on -- is therefore whatever order this
  producer emits, provided each trace has a single producer (the same
  single-writer discipline every append-only log asks of you).
- **Backpressure**: at most ``credit_window`` frames ride unacked
  (window from the server's ``welcome``, or the client's own if
  smaller).  A slow fleet stalls :meth:`send` instead of growing an
  unbounded queue.

:class:`DeltaSubscriber` is the read side: it tails the server's delta
stream into a local :class:`~repro.runtime.net.deltas.DeltaView`,
which then answers histogram/top-k/violation queries with no further
network traffic.

Addresses are ``(host, port)`` tuples for TCP or a path string for a
Unix-domain socket.
"""

from __future__ import annotations

import logging
import socket
import time
from typing import Any

from repro.obs import metrics as _obs_metrics
from repro.obs.trace import new_context
from repro.runtime import codec
from repro.runtime.net.deltas import DeltaView
from repro.runtime.net.wire import (
    PROTOCOL_VERSION,
    FrameSocket,
    ProtocolError,
)
from repro.runtime.shard import TraceId

__all__ = ["DeltaSubscriber", "ProducerClient", "fetch_metrics"]

logger = logging.getLogger(__name__)

Address = "tuple[str, int] | str"


def _open(address: Any, timeout: float) -> FrameSocket:
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        host, port = address
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(timeout)
    return FrameSocket(sock)


def _handshake(
    address: Any,
    role: str,
    name: str,
    timeout: float,
    retries: int,
    retry_delay: float,
) -> tuple[FrameSocket, tuple]:
    """Connect + hello with exponential-backoff retries; returns the
    open frame socket and the server's reply frame."""
    last_exc: Exception | None = None
    for attempt in range(retries + 1):
        if attempt:
            delay = retry_delay * (2 ** (attempt - 1))
            logger.warning(
                "retrying %s handshake with %r in %.3fs "
                "(attempt %d of %d): %s",
                role,
                address,
                delay,
                attempt + 1,
                retries + 1,
                last_exc,
            )
            time.sleep(delay)
        try:
            fs = _open(address, timeout)
        except OSError as exc:
            last_exc = exc
            continue
        try:
            fs.send(("hello", PROTOCOL_VERSION, role, name))
            reply = fs.recv()
            if reply is None:
                raise ProtocolError("server closed during handshake")
            if reply[0] == "error":
                raise ProtocolError(f"server refused: {reply[1]}")
            return fs, reply
        except (OSError, ProtocolError) as exc:
            fs.close()
            last_exc = exc
            continue
    raise ConnectionError(
        f"could not reach ingest server at {address!r} "
        f"after {retries + 1} attempts: {last_exc}"
    )


class ProducerClient:
    """Stream records into an ingest server, exactly once.

    Args:
        address: ``(host, port)`` or a Unix-socket path.
        producer_id: stable identity for resume across reconnects.
            Two live connections with the same id preempt each other
            (newest wins) -- give each producer its own.
        batch: rows buffered locally before a frame ships.
        window: optional client-side cap on unacked frames (the
            effective window is the smaller of this and the server's).
        timeout: per-socket-operation timeout; also how long a full
            window waits for an ack before ``TimeoutError``.
        retries / retry_delay: reconnect schedule (exponential).
        columnar: ship batches as columnar produce frames -- the rows
            transposed into ``(trace_ids, wire_records)`` parallel
            columns (one frame-level tuple per column instead of one
            per row), feeding the server's zero-object ingest path.
            Off by default: an *older* server rejects the four-element
            frame, while a columnar-aware server accepts both shapes,
            so turn this on once the whole deployment has upgraded.

    Use as a context manager; :meth:`close` flushes and waits for the
    final ack.
    """

    def __init__(
        self,
        address: Any,
        *,
        producer_id: str,
        batch: int = 64,
        window: int | None = None,
        timeout: float = 30.0,
        retries: int = 5,
        retry_delay: float = 0.05,
        columnar: bool = False,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be positive")
        if window is not None and window < 1:
            raise ValueError("window must be positive")
        self.address = address
        self.producer_id = producer_id
        self._batch = batch
        self._window_cap = window
        self._timeout = timeout
        self._retries = retries
        self._retry_delay = retry_delay
        self._columnar = columnar
        self._rows: list[tuple[TraceId, tuple]] = []
        self._unacked: dict[int, tuple] = {}  # seq -> produce frame
        self._seq = 0
        self._acked = 0
        self._fs: FrameSocket | None = None
        self.n_fronts = 0
        self.n_shards = 0
        self._window = 0
        # Record-lifecycle tracing: encode latency lands in the
        # client's process-global registry as the client_encode stage
        # (None when telemetry is off -- one attribute test per send).
        self._ctx = new_context(name=f"p.{producer_id}")
        self._connect()

    # -- connection management -----------------------------------------

    def _connect(self) -> None:
        fs, welcome = _handshake(
            self.address,
            "produce",
            self.producer_id,
            self._timeout,
            self._retries,
            self._retry_delay,
        )
        if welcome[0] != "welcome":
            fs.close()
            raise ProtocolError(f"expected welcome, got {welcome[0]!r}")
        _kind, _ver, n_fronts, n_shards, acked, window = welcome
        self._fs = fs
        self.n_fronts, self.n_shards = n_fronts, n_shards
        self._window = (
            window
            if self._window_cap is None
            else min(window, self._window_cap)
        )
        self._absorb_ack(acked)
        # Resume: replay everything the server has not acked, in order.
        for seq in sorted(self._unacked):
            fs.send(self._unacked[seq])

    def _reconnect(self) -> None:
        logger.info(
            "reconnecting producer %r to %r (%d frames unacked)",
            self.producer_id,
            self.address,
            len(self._unacked),
        )
        if self._fs is not None:
            self._fs.close()
            self._fs = None
        self._connect()

    def _absorb_ack(self, acked: int) -> None:
        if acked > self._acked:
            self._acked = acked
            for seq in [s for s in self._unacked if s <= acked]:
                del self._unacked[seq]

    def _handle(self, frame: tuple) -> None:
        if frame[0] == "ack":
            self._absorb_ack(frame[1])
        elif frame[0] == "error":
            raise ProtocolError(f"server error: {frame[1]}")
        else:
            raise ProtocolError(f"unexpected frame {frame[0]!r}")

    def _pump(self, wait: bool) -> None:
        """Absorb pending server frames; with ``wait`` block for at
        least one.  Non-blocking reads drain whatever already arrived
        so acks are processed promptly even mid-send loop."""
        fs = self._fs
        assert fs is not None
        need_one = wait
        while True:
            fs.sock.settimeout(self._timeout if need_one else 0.0)
            try:
                frame = fs.recv()
            except (BlockingIOError, InterruptedError):
                return
            except socket.timeout:
                raise TimeoutError(
                    f"no ack from ingest server in {self._timeout}s "
                    f"({len(self._unacked)} frames unacked)"
                ) from None
            finally:
                fs.sock.settimeout(self._timeout)
            if frame is None:
                raise ProtocolError("server closed the stream")
            self._handle(frame)
            need_one = False

    # -- producing ------------------------------------------------------

    def send(self, trace_id: TraceId, record: Any) -> None:
        """Buffer one record; ships a frame when the batch fills."""
        ctx = self._ctx
        if ctx is None:
            self.send_wire(trace_id, codec.encode_record(record))
            return
        with ctx.span("client_encode"):
            wire = codec.encode_record(record)
        self.send_wire(trace_id, wire)

    def send_wire(self, trace_id: TraceId, wire_record: tuple) -> None:
        """Buffer one already-encoded record (the re-publishing path:
        rows from ``fleet.drain``/journals are already wire tuples)."""
        if self._fs is None:
            raise RuntimeError("producer is closed")
        self._rows.append((trace_id, wire_record))
        if len(self._rows) >= self._batch:
            self._ship()

    def _ship(self) -> None:
        if not self._rows:
            return
        while len(self._unacked) >= self._window:
            try:
                self._pump(wait=True)
            except TimeoutError:
                raise  # a stalled server is the caller's problem
            except (OSError, ProtocolError):
                self._reconnect()
        self._seq += 1
        if self._columnar:
            trace_ids, wire_records = zip(*self._rows)
            frame = ("produce", self._seq, (trace_ids, wire_records), "cols")
        else:
            frame = ("produce", self._seq, tuple(self._rows))
        self._rows = []
        self._unacked[self._seq] = frame
        try:
            self._pump(wait=False)
            assert self._fs is not None
            self._fs.send(frame)
        except (OSError, ProtocolError):
            self._reconnect()  # replay includes the frame we just cut

    def flush(self) -> None:
        """Ship the partial batch and wait until everything is acked --
        after this returns, every record sent is inside the server's
        fleets (ack = absorbed, not just received)."""
        self._ship()
        while self._unacked:
            try:
                self._pump(wait=True)
            except TimeoutError:
                raise
            except (OSError, ProtocolError):
                self._reconnect()

    @property
    def acked_frames(self) -> int:
        return self._acked

    @property
    def unacked_frames(self) -> int:
        return len(self._unacked)

    def close(self) -> None:
        if self._fs is None:
            return
        try:
            self.flush()
            self._fs.send(("bye",))
        finally:
            self._fs.close()
            self._fs = None

    def __enter__(self) -> "ProducerClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class DeltaSubscriber:
    """Tail a server's delta stream into a local
    :class:`~repro.runtime.net.deltas.DeltaView`.

    :meth:`poll` applies one frame (``None`` once the stream ended);
    :meth:`run_to_end` drains until the server's ``end`` marker --
    after which ``view`` holds the final aggregates, reconstructed
    from the incremental stream alone.
    """

    def __init__(
        self,
        address: Any,
        *,
        name: str = "subscriber",
        timeout: float = 30.0,
        retries: int = 5,
        retry_delay: float = 0.05,
    ) -> None:
        self.view = DeltaView()
        self._fs, first = _handshake(
            address, "subscribe", name, timeout, retries, retry_delay
        )
        self.view.apply(first)  # the snapshot

    def poll(self) -> tuple | None:
        """Block for the next frame, apply it, return it; ``None`` once
        the stream has ended."""
        if self.view.closed:
            return None
        frame = self._fs.recv()
        if frame is None:
            raise ProtocolError("server closed without an end frame")
        self.view.apply(frame)
        return frame

    def run_to_end(self) -> DeltaView:
        while not self.view.closed:
            self.poll()
        return self.view

    def close(self) -> None:
        self._fs.close()

    def __enter__(self) -> "DeltaSubscriber":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def fetch_metrics(
    address: Any,
    *,
    name: str = "scrape",
    timeout: float = 30.0,
    retries: int = 0,
    retry_delay: float = 0.05,
) -> tuple[tuple, ...]:
    """One-shot telemetry scrape: the server's latest staged instrument
    rows (see :meth:`IngestServer.staged_metrics_rows`).  Decode with
    :func:`repro.obs.metrics.rows_to_json` or fold into a
    :class:`repro.obs.metrics.MetricsRegistry`.  Empty on a
    telemetry-disabled server."""
    fs, reply = _handshake(
        address, "metrics", name, timeout, retries, retry_delay
    )
    try:
        if reply[0] != "metrics":
            raise ProtocolError(f"expected metrics, got {reply[0]!r}")
        return tuple(reply[1])
    finally:
        fs.close()

"""The durability plane: record journals plus periodic shard snapshots.

PR 5 proved that live monitors -- checker digraphs, deep
``SummaryEdge`` chains, tombstone state -- pickle bit-identically;
this module spends that primitive on crash recovery.  The scheme is
the classic snapshot + write-ahead-log pair (in the spirit of
cylc-flow's ``rundb.py``/``suite_db_mgr.py``, per the roadmap notes),
kept stdlib-only:

* **Record journal (WAL).**  Every ingested record is appended, as a
  ``(tick, shard, trace_id, wire_record)`` frame, to the journal of
  the worker its shard is *currently placed on*.  Frames buffer in
  memory at ingest time (tick order by construction) and hit disk when
  the dispatcher ships the corresponding wire batch -- so anything a
  worker may have absorbed is on disk no later than it left the
  dispatcher.  Files are length-prefixed, CRC-guarded pickle frames; a
  reader stops cleanly at a torn tail, so a crash mid-append costs at
  most the interrupted frame.

* **Snapshots.**  At a checkpoint, every worker emits its
  :meth:`~repro.runtime.shard.ShardGroup.snapshot` frame (taken
  *without* flushing: pending buffers travel verbatim).  The store
  writes one snapshot file per worker plus a metadata frame carrying
  the fleet configuration, the placement table, and the dispatcher's
  own durable state; the metadata ``os.replace`` is the commit point.
  Journals are then reset -- a WAL frame is live only until the first
  checkpoint whose snapshots subsume it (and a replay additionally
  skips frames at or below the committed tick, so a crash between the
  commit and the reset cannot double-apply).

* **Recovery.**  A crashed worker is respawned, handed its snapshot,
  and replayed its journal suffix; a whole fleet restarts from the
  metadata + snapshots + merged journals.  Per-worker journals flush
  at different moments, so after a full-process crash the on-disk
  frames cover a *ragged* frontier; :func:`contiguous_prefix` computes
  the longest gap-free tick prefix, which is exactly the stream prefix
  the restored fleet has provably absorbed -- the producer resumes
  from ``fleet.ingested_records``.

Frame format (all integers big-endian): ``[length u32][crc32 u32]
[payload]`` where ``payload`` is a pickled plain tuple.  See
:class:`Durability` for the user-facing configuration and
:mod:`repro.runtime.parallel` for the protocol that drives this store.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import time
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.obs import metrics as _obs_metrics

__all__ = [
    "Durability",
    "DurableStore",
    "JournalScan",
    "contiguous_prefix",
    "frame_bytes",
    "read_frames",
    "scan_frames",
    "write_frames",
]

logger = logging.getLogger(__name__)

_HEADER = struct.Struct(">II")
_MAX_FRAME = 1 << 31
_META_NAME = "meta.bin"


class _StoreObs:
    """The store's instrument bundle (all wall-clock, none deterministic:
    flush/checkpoint timing depends on the host, and frame counts depend
    on ship batching)."""

    __slots__ = ("flush_ns", "fsync_ns", "checkpoint_ns", "frames")

    def __init__(self, registry: "_obs_metrics.MetricsRegistry") -> None:
        self.flush_ns = registry.histogram(
            "repro_durable_flush_ns",
            deterministic=False,
            help="journal flush latency (write + flush + optional fsync)",
        )
        self.fsync_ns = registry.histogram(
            "repro_durable_fsync_ns",
            deterministic=False,
            help="os.fsync latency on journal flushes",
        )
        self.checkpoint_ns = registry.histogram(
            "repro_durable_checkpoint_ns",
            deterministic=False,
            help="full checkpoint commit duration",
        )
        self.frames = registry.counter(
            "repro_durable_journal_frames_total",
            deterministic=False,
            help="WAL frames written to disk",
        )


@dataclass(frozen=True)
class Durability:
    """Configuration of a fleet's durability plane.

    Attributes:
        root: directory holding the journals, snapshots and metadata
            (created on demand; one fleet per directory).
        checkpoint_every: records between automatic checkpoints
            (``None`` = only explicit :meth:`ParallelFleet.checkpoint`
            calls and the forced checkpoints around migration).
        fsync: ``os.fsync`` every journal flush and snapshot write.
            Off by default: the journals then survive *process* crashes
            (the failure mode recovery targets) but a same-instant OS
            crash may cost the tail.
        max_recoveries: per-worker respawn budget.  A deterministic
            poison record would otherwise crash-recover-replay forever;
            once the budget is spent the worker stays dead and its
            shards degrade, exactly as without durability.
    """

    root: str | os.PathLike
    checkpoint_every: int | None = 50_000
    fsync: bool = False
    max_recoveries: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive (or None)")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be non-negative")


def frame_bytes(frame: Any) -> bytes:
    """One frame in WAL format: ``[length u32][crc32 u32][payload]``.

    The single encoding shared by the journal files here and the
    network plane's stream framing (:mod:`repro.runtime.net`): a frame
    written by either side parses in the other.
    """
    payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def write_frames(path: str | os.PathLike, frames: Iterable[Any]) -> None:
    """Write pickled frames to ``path`` (truncating) in WAL format."""
    with open(path, "wb") as fh:
        for frame in frames:
            fh.write(frame_bytes(frame))


def read_frames(path: str | os.PathLike) -> Iterator[Any]:
    """Yield frames from a WAL-format file, stopping at a torn tail.

    A truncated header, truncated payload, implausible length, or CRC
    mismatch ends iteration cleanly: those are exactly the states an
    append interrupted by a crash leaves behind, and everything before
    the tear is intact by construction (appends are sequential).
    """
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            length, crc = _HEADER.unpack(header)
            if length > _MAX_FRAME:
                return
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield pickle.loads(payload)


@dataclass(frozen=True)
class JournalScan:
    """What a full journal scan found, damage classified.

    Attributes:
        frames: every CRC-intact frame, file order (frames salvaged
            *past* mid-file damage included -- they were committed
            appends, and :func:`contiguous_prefix` handles the tick gap
            the damage leaves).
        total_bytes: the file's size.
        bytes_discarded: bytes skipped over mid-file damage (``0`` for
            a clean or merely torn file).
        frames_salvaged: intact frames found after the first damage.
        torn_tail: the file ends in a partial frame -- the normal
            leftover of an append interrupted by a crash, not damage.
        corrupt: mid-file damage (a CRC mismatch or implausible header
            with valid frames after it): unlike a torn tail this means
            committed history was lost, and a recovery claim built from
            this journal may silently under-count.
    """

    frames: tuple
    total_bytes: int
    bytes_discarded: int
    frames_salvaged: int
    torn_tail: bool
    corrupt: bool


def _frame_at(data: bytes, offset: int) -> tuple[Any, int] | None:
    """Decode the frame starting at ``offset``, or ``None`` if the
    bytes there are not one (bad length, short payload, CRC mismatch).
    """
    if offset + _HEADER.size > len(data):
        return None
    length, crc = _HEADER.unpack_from(data, offset)
    # length == 0 never occurs (payloads are pickles, >= 2 bytes) and
    # would make a run of zero bytes look like valid empty frames.
    if length == 0 or length > _MAX_FRAME:
        return None
    end = offset + _HEADER.size + length
    if end > len(data):
        return None
    payload = data[offset + _HEADER.size : end]
    if zlib.crc32(payload) != crc:
        return None
    return pickle.loads(payload), end


def scan_frames(path: str | os.PathLike, *, strict: bool = False) -> JournalScan:
    """Read a WAL-format file end to end, classifying any damage.

    :func:`read_frames` stops at the first bad frame because a torn
    tail -- the only damage a crashed append can cause -- is always
    *last*.  But a flipped bit in the middle of a journal (bad disk,
    truncation, an editor) also stops it, silently hiding every later
    frame; a recovery claim built on that read under-counts with no
    signal.  This scan tells the two apart: damage is *mid-file*
    (``corrupt``) when CRC-intact frames exist after it, found by
    resynchronizing on the next byte offset that parses as a valid
    frame, and a *torn tail* (``torn_tail``) when nothing valid
    follows.  With ``strict=True`` mid-file corruption raises
    ``ValueError`` instead of being reported (torn tails never raise:
    they are expected after any crash).  A missing file scans as
    empty: an unwritten journal and an empty one claim the same
    nothing.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        data = b""
    frames: list[Any] = []
    offset = 0
    discarded = 0
    salvaged = 0
    torn = False
    corrupt = False
    size = len(data)
    while offset < size:
        parsed = _frame_at(data, offset)
        if parsed is not None:
            frame, offset = parsed
            frames.append(frame)
            if corrupt:
                salvaged += 1
            continue
        # Damage at `offset`: resynchronize on the next byte position
        # that parses as a whole valid frame.  Found -> the damage was
        # mid-file corruption; not found -> it is the torn tail.
        resume = next(
            (
                pos
                for pos in range(offset + 1, size - _HEADER.size + 1)
                if _frame_at(data, pos) is not None
            ),
            None,
        )
        if resume is None:
            torn = offset < size
            break
        if strict:
            raise ValueError(
                f"mid-file corruption in {path} at byte {offset}: "
                f"{resume - offset} bytes unreadable before the next "
                "valid frame"
            )
        corrupt = True
        discarded += resume - offset
        offset = resume
    return JournalScan(
        frames=tuple(frames),
        total_bytes=size,
        bytes_discarded=discarded,
        frames_salvaged=salvaged,
        torn_tail=torn,
        corrupt=corrupt,
    )


def contiguous_prefix(
    frames: Iterable[tuple], after_tick: int
) -> tuple[list[tuple], int]:
    """The longest gap-free run of WAL frames following ``after_tick``.

    Every ingest stamps exactly one global tick, so the union of all
    journals *should* cover ``after_tick+1, after_tick+2, ...`` -- but
    per-worker journals flush at different moments (and tails can
    tear), so the union may stop raggedly.  Only the contiguous prefix
    is a stream prefix the restored fleet can honestly claim; returns
    ``(frames_in_tick_order, last_covered_tick)``.

    Exact-duplicate ticks are skipped, keeping the first copy: the
    same frame can legitimately appear in two journals (a record
    journaled under one worker, then re-journaled under another after
    a ``migrate_shard`` or a recovery re-flush), and a duplicate is
    *coverage*, not a gap -- only a genuinely missing tick ends the
    claim.
    """
    ordered = sorted(
        (f for f in frames if f[0] > after_tick), key=lambda f: f[0]
    )
    prefix: list[tuple] = []
    tick = after_tick
    for frame in ordered:
        if frame[0] == tick:
            continue
        if frame[0] != tick + 1:
            break
        tick = frame[0]
        prefix.append(frame)
    return prefix, tick


class DurableStore:
    """One fleet's on-disk state: per-worker journals, snapshots, meta.

    Layout under ``root``::

        meta.bin             committed checkpoint metadata (one frame);
                             its atomic replace is the commit point
        snap-<epoch>-w<k>.bin  worker ``k``'s group snapshot (one frame)
        wal-w<k>.log         worker ``k``'s record journal

    The store itself is mechanism only -- what goes *into* frames and
    when checkpoints happen is the dispatcher's protocol (see
    :mod:`repro.runtime.parallel`).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        fsync: bool = False,
        metrics: "_obs_metrics.MetricsRegistry | None" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._obs = None if metrics is None else _StoreObs(metrics)
        # Per-worker in-memory journal tails, appended at ingest time
        # (hence tick-ordered), written out by flush().
        self._pending: dict[int, list[tuple]] = {}

    # -- journal ------------------------------------------------------

    def wal_path(self, worker_id: int) -> Path:
        return self.root / f"wal-w{worker_id}.log"

    def append(
        self, worker_id: int, tick: int, shard: int, trace_id, wire_record
    ) -> None:
        """Buffer one record frame on its worker's journal tail."""
        self._pending.setdefault(worker_id, []).append(
            (tick, shard, trace_id, wire_record)
        )

    def flush(self, worker_id: int) -> None:
        """Write the buffered tail to the worker's journal file."""
        tail = self._pending.pop(worker_id, None)
        if not tail:
            return
        obs = self._obs
        start = 0 if obs is None else time.perf_counter_ns()
        with open(self.wal_path(worker_id), "ab") as fh:
            for frame in tail:
                fh.write(frame_bytes(frame))
            fh.flush()
            if self.fsync:
                sync_start = 0 if obs is None else time.perf_counter_ns()
                os.fsync(fh.fileno())
                if obs is not None:
                    obs.fsync_ns.observe(
                        time.perf_counter_ns() - sync_start
                    )
        if obs is not None:
            obs.flush_ns.observe(time.perf_counter_ns() - start)
            obs.frames.inc(len(tail))

    def flush_all(self) -> None:
        for worker_id in list(self._pending):
            self.flush(worker_id)

    def wal_frames(self, worker_id: int, after_tick: int) -> list[tuple]:
        """The worker's journal frames above ``after_tick`` (buffered
        tail flushed first, so the answer is complete).

        Reads via :func:`scan_frames`: a torn tail is dropped silently
        (the expected crash leftover), but mid-file corruption --
        committed frames lost, so any recovery claim built from this
        journal may under-count -- raises a ``RuntimeWarning`` naming
        the damage, and the frames salvaged past it are still
        returned (:func:`contiguous_prefix` stops the claim at the
        gap the damage left).
        """
        self.flush(worker_id)
        path = self.wal_path(worker_id)
        if not path.exists():
            return []
        scan = scan_frames(path)
        if scan.corrupt:
            logger.warning(
                "journal %s has mid-file corruption: %d bytes "
                "unreadable, %d frames salvaged past the damage",
                path,
                scan.bytes_discarded,
                scan.frames_salvaged,
            )
            warnings.warn(
                f"journal {path} has mid-file corruption: "
                f"{scan.bytes_discarded} bytes unreadable, "
                f"{scan.frames_salvaged} frames salvaged past the "
                "damage; the recovery claim stops at the resulting "
                "tick gap and may under-count -- re-feed from "
                "fleet.ingested_records",
                RuntimeWarning,
                stacklevel=2,
            )
        return [f for f in scan.frames if f[0] > after_tick]

    # -- checkpoints --------------------------------------------------

    def snapshot_path(self, epoch: int, worker_id: int) -> Path:
        return self.root / f"snap-{epoch:08d}-w{worker_id}.bin"

    def checkpoint(
        self, meta: dict[str, Any], snapshots: dict[int, tuple]
    ) -> None:
        """Commit one checkpoint: snapshots, then metadata (the commit
        point), then journal reset and old-epoch cleanup.

        ``meta`` must carry ``"epoch"`` and ``"tick"``.  A crash before
        the metadata replace leaves the previous checkpoint authoritative
        (the new snapshot files are unreferenced garbage, cleaned at the
        next commit); a crash after it leaves stale journal frames,
        which replay skips by tick.
        """
        obs = self._obs
        start = 0 if obs is None else time.perf_counter_ns()
        epoch = meta["epoch"]
        for worker_id, frame in snapshots.items():
            path = self.snapshot_path(epoch, worker_id)
            write_frames(path, [frame])
            if self.fsync:
                with open(path, "rb") as fh:
                    os.fsync(fh.fileno())
        tmp = self.root / (_META_NAME + ".tmp")
        write_frames(tmp, [meta])
        if self.fsync:
            with open(tmp, "rb") as fh:
                os.fsync(fh.fileno())
        os.replace(tmp, self.root / _META_NAME)
        self._pending.clear()
        for path in self.root.glob("wal-w*.log"):
            path.unlink()
        for path in self.root.glob("snap-*-w*.bin"):
            if not path.name.startswith(f"snap-{epoch:08d}-"):
                path.unlink()
        if obs is not None:
            obs.checkpoint_ns.observe(time.perf_counter_ns() - start)
        logger.debug(
            "checkpoint committed: epoch %d, tick %d, %d snapshots",
            epoch,
            meta.get("tick", -1),
            len(snapshots),
        )

    def load(self) -> tuple[dict[str, Any], dict[int, tuple]] | None:
        """The committed checkpoint: ``(meta, {worker_id: snapshot})``,
        or ``None`` when no checkpoint was ever committed."""
        meta_path = self.root / _META_NAME
        if not meta_path.exists():
            return None
        frames = list(read_frames(meta_path))
        if not frames:
            raise ValueError(f"corrupt checkpoint metadata: {meta_path}")
        meta = frames[0]
        epoch = meta["epoch"]
        snapshots: dict[int, tuple] = {}
        prefix = f"snap-{epoch:08d}-w"
        for path in sorted(self.root.glob(f"{prefix}*.bin")):
            worker_id = int(path.name[len(prefix) : -len(".bin")])
            rows = list(read_frames(path))
            if not rows:
                raise ValueError(f"corrupt snapshot frame: {path}")
            snapshots[worker_id] = rows[0]
        return meta, snapshots

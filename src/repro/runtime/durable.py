"""The durability plane: record journals plus periodic shard snapshots.

PR 5 proved that live monitors -- checker digraphs, deep
``SummaryEdge`` chains, tombstone state -- pickle bit-identically;
this module spends that primitive on crash recovery.  The scheme is
the classic snapshot + write-ahead-log pair (in the spirit of
cylc-flow's ``rundb.py``/``suite_db_mgr.py``, per the roadmap notes),
kept stdlib-only:

* **Record journal (WAL).**  Every ingested record is appended, as a
  ``(tick, shard, trace_id, wire_record)`` frame, to the journal of
  the worker its shard is *currently placed on*.  Frames buffer in
  memory at ingest time (tick order by construction) and hit disk when
  the dispatcher ships the corresponding wire batch -- so anything a
  worker may have absorbed is on disk no later than it left the
  dispatcher.  Files are length-prefixed, CRC-guarded pickle frames; a
  reader stops cleanly at a torn tail, so a crash mid-append costs at
  most the interrupted frame.

* **Snapshots.**  At a checkpoint, every worker emits its
  :meth:`~repro.runtime.shard.ShardGroup.snapshot` frame (taken
  *without* flushing: pending buffers travel verbatim).  The store
  writes one snapshot file per worker plus a metadata frame carrying
  the fleet configuration, the placement table, and the dispatcher's
  own durable state; the metadata ``os.replace`` is the commit point.
  Journals are then reset -- a WAL frame is live only until the first
  checkpoint whose snapshots subsume it (and a replay additionally
  skips frames at or below the committed tick, so a crash between the
  commit and the reset cannot double-apply).

* **Recovery.**  A crashed worker is respawned, handed its snapshot,
  and replayed its journal suffix; a whole fleet restarts from the
  metadata + snapshots + merged journals.  Per-worker journals flush
  at different moments, so after a full-process crash the on-disk
  frames cover a *ragged* frontier; :func:`contiguous_prefix` computes
  the longest gap-free tick prefix, which is exactly the stream prefix
  the restored fleet has provably absorbed -- the producer resumes
  from ``fleet.ingested_records``.

Frame format (all integers big-endian): ``[length u32][crc32 u32]
[payload]`` where ``payload`` is a pickled plain tuple.  See
:class:`Durability` for the user-facing configuration and
:mod:`repro.runtime.parallel` for the protocol that drives this store.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "Durability",
    "DurableStore",
    "contiguous_prefix",
    "read_frames",
    "write_frames",
]

_HEADER = struct.Struct(">II")
_MAX_FRAME = 1 << 31
_META_NAME = "meta.bin"


@dataclass(frozen=True)
class Durability:
    """Configuration of a fleet's durability plane.

    Attributes:
        root: directory holding the journals, snapshots and metadata
            (created on demand; one fleet per directory).
        checkpoint_every: records between automatic checkpoints
            (``None`` = only explicit :meth:`ParallelFleet.checkpoint`
            calls and the forced checkpoints around migration).
        fsync: ``os.fsync`` every journal flush and snapshot write.
            Off by default: the journals then survive *process* crashes
            (the failure mode recovery targets) but a same-instant OS
            crash may cost the tail.
        max_recoveries: per-worker respawn budget.  A deterministic
            poison record would otherwise crash-recover-replay forever;
            once the budget is spent the worker stays dead and its
            shards degrade, exactly as without durability.
    """

    root: str | os.PathLike
    checkpoint_every: int | None = 50_000
    fsync: bool = False
    max_recoveries: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive (or None)")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be non-negative")


def write_frames(path: str | os.PathLike, frames: Iterable[Any]) -> None:
    """Write pickled frames to ``path`` (truncating) in WAL format."""
    with open(path, "wb") as fh:
        for frame in frames:
            payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
            fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
            fh.write(payload)


def read_frames(path: str | os.PathLike) -> Iterator[Any]:
    """Yield frames from a WAL-format file, stopping at a torn tail.

    A truncated header, truncated payload, implausible length, or CRC
    mismatch ends iteration cleanly: those are exactly the states an
    append interrupted by a crash leaves behind, and everything before
    the tear is intact by construction (appends are sequential).
    """
    with open(path, "rb") as fh:
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            length, crc = _HEADER.unpack(header)
            if length > _MAX_FRAME:
                return
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield pickle.loads(payload)


def contiguous_prefix(
    frames: Iterable[tuple], after_tick: int
) -> tuple[list[tuple], int]:
    """The longest gap-free run of WAL frames following ``after_tick``.

    Every ingest stamps exactly one global tick, so the union of all
    journals *should* cover ``after_tick+1, after_tick+2, ...`` -- but
    per-worker journals flush at different moments (and tails can
    tear), so the union may stop raggedly.  Only the contiguous prefix
    is a stream prefix the restored fleet can honestly claim; returns
    ``(frames_in_tick_order, last_covered_tick)``.
    """
    ordered = sorted(
        (f for f in frames if f[0] > after_tick), key=lambda f: f[0]
    )
    prefix: list[tuple] = []
    tick = after_tick
    for frame in ordered:
        if frame[0] != tick + 1:
            break
        tick = frame[0]
        prefix.append(frame)
    return prefix, tick


class DurableStore:
    """One fleet's on-disk state: per-worker journals, snapshots, meta.

    Layout under ``root``::

        meta.bin             committed checkpoint metadata (one frame);
                             its atomic replace is the commit point
        snap-<epoch>-w<k>.bin  worker ``k``'s group snapshot (one frame)
        wal-w<k>.log         worker ``k``'s record journal

    The store itself is mechanism only -- what goes *into* frames and
    when checkpoints happen is the dispatcher's protocol (see
    :mod:`repro.runtime.parallel`).
    """

    def __init__(self, root: str | os.PathLike, *, fsync: bool = False) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        # Per-worker in-memory journal tails, appended at ingest time
        # (hence tick-ordered), written out by flush().
        self._pending: dict[int, list[tuple]] = {}

    # -- journal ------------------------------------------------------

    def wal_path(self, worker_id: int) -> Path:
        return self.root / f"wal-w{worker_id}.log"

    def append(
        self, worker_id: int, tick: int, shard: int, trace_id, wire_record
    ) -> None:
        """Buffer one record frame on its worker's journal tail."""
        self._pending.setdefault(worker_id, []).append(
            (tick, shard, trace_id, wire_record)
        )

    def flush(self, worker_id: int) -> None:
        """Write the buffered tail to the worker's journal file."""
        tail = self._pending.pop(worker_id, None)
        if not tail:
            return
        with open(self.wal_path(worker_id), "ab") as fh:
            for frame in tail:
                payload = pickle.dumps(
                    frame, protocol=pickle.HIGHEST_PROTOCOL
                )
                fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
                fh.write(payload)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def flush_all(self) -> None:
        for worker_id in list(self._pending):
            self.flush(worker_id)

    def wal_frames(self, worker_id: int, after_tick: int) -> list[tuple]:
        """The worker's journal frames above ``after_tick`` (buffered
        tail flushed first, so the answer is complete)."""
        self.flush(worker_id)
        path = self.wal_path(worker_id)
        if not path.exists():
            return []
        return [f for f in read_frames(path) if f[0] > after_tick]

    # -- checkpoints --------------------------------------------------

    def snapshot_path(self, epoch: int, worker_id: int) -> Path:
        return self.root / f"snap-{epoch:08d}-w{worker_id}.bin"

    def checkpoint(
        self, meta: dict[str, Any], snapshots: dict[int, tuple]
    ) -> None:
        """Commit one checkpoint: snapshots, then metadata (the commit
        point), then journal reset and old-epoch cleanup.

        ``meta`` must carry ``"epoch"`` and ``"tick"``.  A crash before
        the metadata replace leaves the previous checkpoint authoritative
        (the new snapshot files are unreferenced garbage, cleaned at the
        next commit); a crash after it leaves stale journal frames,
        which replay skips by tick.
        """
        epoch = meta["epoch"]
        for worker_id, frame in snapshots.items():
            path = self.snapshot_path(epoch, worker_id)
            write_frames(path, [frame])
            if self.fsync:
                with open(path, "rb") as fh:
                    os.fsync(fh.fileno())
        tmp = self.root / (_META_NAME + ".tmp")
        write_frames(tmp, [meta])
        if self.fsync:
            with open(tmp, "rb") as fh:
                os.fsync(fh.fileno())
        os.replace(tmp, self.root / _META_NAME)
        self._pending.clear()
        for path in self.root.glob("wal-w*.log"):
            path.unlink()
        for path in self.root.glob("snap-*-w*.bin"):
            if not path.name.startswith(f"snap-{epoch:08d}-"):
                path.unlink()

    def load(self) -> tuple[dict[str, Any], dict[int, tuple]] | None:
        """The committed checkpoint: ``(meta, {worker_id: snapshot})``,
        or ``None`` when no checkpoint was ever committed."""
        meta_path = self.root / _META_NAME
        if not meta_path.exists():
            return None
        frames = list(read_frames(meta_path))
        if not frames:
            raise ValueError(f"corrupt checkpoint metadata: {meta_path}")
        meta = frames[0]
        epoch = meta["epoch"]
        snapshots: dict[int, tuple] = {}
        prefix = f"snap-{epoch:08d}-w"
        for path in sorted(self.root.glob(f"{prefix}*.bin")):
            worker_id = int(path.name[len(prefix) : -len(".bin")])
            rows = list(read_frames(path))
            if not rows:
                raise ValueError(f"corrupt snapshot frame: {path}")
            snapshots[worker_id] = rows[0]
        return meta, snapshots

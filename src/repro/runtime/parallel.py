"""`ParallelFleet`: the serial fleet's surface, executed on workers.

The monitoring plane as an asynchronous system of independent workers:
trace records are hash-routed (the serial fleet's CRC32 routing,
unchanged) to shards, shards are partitioned round-robin across
``n_workers`` worker backends, and each worker drives its shard subset
as one :class:`~repro.runtime.shard.ShardGroup` -- the exact engine the
serial :class:`~repro.analysis.fleet.MonitorFleet` runs in process.
The facade keeps the serial surface: ``ingest``, ``ingest_many``,
``flush``, ``close``, ``worst_ratio``, ``is_degraded``, the aggregate
queries, and ``report`` returning the same :class:`FleetReport`.

**Bit-identity contract.**  A trace's worst ratio is a function of its
record sequence alone; the dispatcher preserves per-trace record order
(single-threaded routing into FIFO per-worker queues) and workers run
the serial engine with the serial watermark, so every per-trace worst
ratio, degradation flag, and the *set* of violating traces are
bit-identical to a serial ``MonitorFleet`` fed the same stream (two
narrow carve-outs below) --
property-tested across backends in ``tests/runtime/test_parallel.py``
and gated at scale by ``benchmarks/bench_parallel.py``.  What may
differ is scheduling-shaped metadata: flush counts (wire batching
coalesces flush boundaries), eviction/compaction counters (each worker
enforces its budget share against its own LRU order), and the *order*
of violation reporting (see below).  Two documented carve-outs.  First, *budget eviction on metadata-free
streams*: without ``record.sends`` announcements, eviction under an
``event_budget`` can cut a prefix an unseen in-flight message still
crosses (the documented degraded regime), and serial and parallel make
those unsafe cuts at different points -- one global LRU versus each
worker's LRU over its share -- so *which* traces end up flagged
``degraded`` (with honestly-flagged lower-bound ratios) can differ
between the front ends.  Streams carrying sends metadata keep eviction
exact everywhere, so the bit-identity contract is unaffected.  Second,
``auto_retire_after``.  Idle ages are measured in the same global
stream ticks as the serial fleet (each record's touch time is its
stream position), but a worker's clock advances only when it receives
a batch or a barrier, and retirement probes run at batch granularity
-- so *when* an idle trace retires is backend-dependent.  A trace that
is retired and then receives more records reopens degraded (by
design), and because shifting one retirement shifts every later
retire/reopen decision on that trace, serial and parallel can disagree
on which borderline-idle traces end up flagged -- in either direction.
Each front end remains individually sound (degraded ratios are
honestly-flagged lower bounds, everything else exact) and individually
deterministic; workloads without auto-retirement carry the full
bit-identity contract.

**Batching and backpressure.**  Ingestion buffers per shard and ships
``wire_batch``-record batches; a worker absorbs a batch through the
engine's bulk path (buffer all, flush watermark-crossers once).
Per-worker inboxes are bounded (``inbox_capacity`` batches): a full
inbox blocks the dispatcher in liveness-probing slices, so a slow
worker throttles ingestion instead of accumulating unbounded backlog,
and a dead one raises instead of hanging.

**Deterministic violation merge.**  Workers stamp each violation with
the violating trace's last absorbed global ingest tick at the
detecting flush (deterministic for a fixed fleet configuration --
flush boundaries, and with them the tick, depend on ``wire_batch``)
and push it unsolicited.  The dispatcher fires
``on_violation`` callbacks only at *sync barriers* (``flush()``,
``report()``, ``violating_traces()``, ``shutdown()`` -- points where
every worker has acknowledged everything dispatched before the
barrier), sorted by ``(tick, str(trace_id))``: the firing order is a
function of the call sequence, not of worker scheduling, and
``violating_traces()`` returns that merged order.

**Budget apportionment and rebalancing.**  A global ``event_budget``
is split evenly across workers at start; at each barrier the
dispatcher re-apportions it proportionally to the workers' live-event
demand (a floor keeps every worker operable).  Budget epochs make the
reported watermark sound: each worker's post-enforcement peak is reset
when its share changes, and the fleet-level ``peak_live_events`` is
the maximum over epochs of the summed per-worker peaks -- within an
epoch the shares are static and sum to at most the budget, so the
reported watermark can only *over*-estimate the true global peak,
never hide an overrun.

**Crash containment.**  A worker that dies (its own traceback, or a
vanished process) is marked dead at the next interaction: its shards
are reported in ``FleetReport.crashed_shards`` with their last-synced
statistics, records routed to them are dropped and counted
(``dropped_records``), per-trace queries against them raise
:class:`~repro.runtime.backends.WorkerCrashed` naming the worker and
shards -- and every other worker keeps serving.  No code path waits
unboundedly on a dead peer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Iterable

from repro.analysis.online import OnlineAbcMonitor
from repro.core.cycles import CycleClassification
from repro.core.events import ProcessId
from repro.runtime import codec
from repro.runtime.backends import (
    ProcessBackend,
    ThreadBackend,
    WorkerCrashed,
    WorkerHandle,
)
from repro.runtime.shard import (
    FleetReport,
    ShardStats,
    TraceId,
    TraceSummary,
    ratio_histogram,
    shard_index_of as _shard_index,
    top_k_riskiest,
)
from repro.sim.trace import ReceiveRecord

__all__ = ["ParallelFleet"]


class ParallelFleet:
    """The multi-worker fleet front end (see the module docstring).

    Args:
        xi: optional synchrony parameter, as in the serial fleet.
        n_workers: worker count (``>= 1``); shards are partitioned
            round-robin, so ``n_shards`` must be at least ``n_workers``.
        n_shards: global shard count (default 8, the serial default).
        batch_size: the serial per-trace flush watermark, applied
            unchanged inside each worker.
        event_budget: *global* live-event budget, apportioned across
            workers and rebalanced at barriers (``None`` disables).
        auto_retire_after: idle age in global ingest ticks (the
            dispatcher's record counter, so idleness means the same
            thing as in the serial fleet).  Retirement *timing* is
            batch-granular and therefore backend-dependent -- see the
            module docstring's carve-out.
        compact_threshold: adaptive compaction cadence, per monitor.
        faulty / drop_faulty: per-monitor message filtering.
        backend: ``"process"`` (default), ``"thread"``, or a backend
            instance (anything with ``spawn(...) -> WorkerHandle``).
        start_method: multiprocessing start method for the default
            process backend.
        wire_batch: records per shard batch shipped to workers;
            the batching lever of the dispatcher (latency vs. framing
            overhead), invisible to reported ratios.
        inbox_capacity: bounded-inbox depth per worker, in batches
            (the backpressure lever).
        rebalance: re-apportion the budget by live-event demand at
            barriers (``False`` freezes the initial even split).
        monitor_factory: per-trace monitor customization; requires a
            backend whose workers share the dispatcher's address space
            (the thread backend).
        on_violation: ``callback(trace_id, witness)``, fired at sync
            barriers in the deterministic merged order.
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        *,
        n_workers: int = 2,
        n_shards: int | None = None,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        compact_threshold: float | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        backend: str | Any = "process",
        start_method: str | None = None,
        wire_batch: int = 256,
        inbox_capacity: int = 16,
        rebalance: bool = True,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_shards is None:
            n_shards = max(8, n_workers)
        if n_shards < n_workers:
            raise ValueError(
                f"n_shards ({n_shards}) must be at least n_workers "
                f"({n_workers}): every worker needs a shard"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if wire_batch < 1:
            raise ValueError("wire_batch must be positive")
        if inbox_capacity < 1:
            # Queue(maxsize=0) means *unbounded* -- the opposite of
            # what a caller asking for the tightest bound intends, and
            # it silently voids the backpressure guarantee.
            raise ValueError("inbox_capacity must be positive")
        if compact_threshold is not None and compact_threshold <= 1:
            raise ValueError(
                "compact_threshold must exceed 1, got "
                f"{compact_threshold}"
            )
        if event_budget is not None and event_budget < n_workers:
            raise ValueError(
                "event_budget must be at least n_workers (every worker "
                f"needs a positive share), got {event_budget}"
            )
        if auto_retire_after is not None and auto_retire_after < 1:
            raise ValueError("auto_retire_after must be positive (or None)")
        if backend == "process":
            backend = ProcessBackend(start_method)
        elif backend == "thread":
            backend = ThreadBackend()
        elif isinstance(backend, str):
            raise ValueError(
                f"unknown backend {backend!r}: choose 'process', 'thread', "
                "or pass a backend instance"
            )
        if monitor_factory is not None and not getattr(
            backend, "supports_callables", False
        ):
            raise ValueError(
                "monitor_factory requires a shared-address-space backend "
                "(backend='thread'); it cannot cross a process boundary"
            )
        self._xi = xi
        self._n_shards = n_shards
        self._n_workers = n_workers
        self._batch_size = batch_size
        self._event_budget = event_budget
        self.wire_batch = wire_batch
        self.rebalance = rebalance
        self.on_violation = on_violation
        self._backend = backend
        self._tick = 0
        self._req = 0
        self._stopped = False
        self.dropped_records = 0
        # Violation notices: pending rows are (tick, trace_id, wire
        # witness); once fired only (tick, trace_id) is retained -- a
        # long-running fleet must not hold every witness walk forever.
        self._pending_notices: list[tuple] = []
        self._fired_notices: list[tuple[int, TraceId]] = []
        # Per-shard outgoing buffers of (tick, trace_id, encoded record).
        self._buffers: dict[int, list[tuple]] = {}
        # trace id -> shard memo: routing hashes each id once, not once
        # per record (the ingest hot path).  Bounded: on unbounded
        # trace populations (the workloads auto-retirement and the
        # event budget exist to survive) the memo is cleared and
        # rebuilt rather than growing one entry per id forever --
        # routing is a cheap pure function, the memo is only a cache.
        self._route: dict[TraceId, int] = {}
        self._route_memo_max = 1 << 18
        # Worker bookkeeping.
        self._dead: dict[int, str] = {}
        # Records shipped per worker: reconciles in-flight loss when a
        # worker crashes (see _mark_dead).
        self._shipped: dict[int, int] = {}
        self._live_cache: dict[int, int] = {}
        self._epoch_peak: dict[int, int] = {}
        self._last_report: dict[int, tuple] = {}
        self._peak = 0
        share = None
        if event_budget is not None:
            share = event_budget // n_workers
        self._shares: dict[int, int | None] = {
            w: (share + 1 if share is not None
                and w < event_budget - share * n_workers else share)
            for w in range(n_workers)
        }
        self._handles: list[WorkerHandle] = []
        for worker_id in range(n_workers):
            config = {
                "xi": codec.encode_fraction(
                    None if xi is None else Fraction(xi)
                ),
                "batch_size": batch_size,
                "event_budget": self._shares[worker_id],
                "auto_retire_after": auto_retire_after,
                "compact_threshold": compact_threshold,
                "faulty": tuple(faulty),
                "drop_faulty": drop_faulty,
            }
            if monitor_factory is not None:
                config["monitor_factory"] = monitor_factory
            self._handles.append(
                backend.spawn(
                    worker_id,
                    tuple(range(worker_id, n_shards, n_workers)),
                    config,
                    inbox_capacity,
                )
            )

    # ------------------------------------------------------------------
    # spawn-time configuration (read-only: these were shipped to the
    # workers at spawn, and there is no re-propagation protocol --
    # unlike the serial fleet's in-process retunable properties, a
    # write here would change only what report() echoes while every
    # worker kept the old value.  Assignment therefore raises instead
    # of silently lying.)
    # ------------------------------------------------------------------

    @property
    def xi(self) -> Fraction | float | int | str | None:
        return self._xi

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def event_budget(self) -> int | None:
        return self._event_budget

    # ------------------------------------------------------------------
    # routing and low-level messaging
    # ------------------------------------------------------------------

    def shard_of(self, trace_id: TraceId) -> int:
        """The (serial-identical) shard index ``trace_id`` routes to."""
        return _shard_index(trace_id, self.n_shards)

    def worker_of(self, shard_index: int) -> int:
        """The worker owning a shard (round-robin partition)."""
        return shard_index % self.n_workers

    def shards_of_worker(self, worker_id: int) -> tuple[int, ...]:
        return tuple(range(worker_id, self.n_shards, self.n_workers))

    def crashed_shards(self) -> tuple[int, ...]:
        """Shards owned by dead workers, ascending (empty = all healthy)."""
        return tuple(
            sorted(
                shard
                for worker_id in self._dead
                for shard in self.shards_of_worker(worker_id)
            )
        )

    def _require_alive(self, worker_id: int) -> WorkerHandle:
        if worker_id in self._dead:
            raise self._crash_error(worker_id)
        return self._handles[worker_id]

    def _mark_dead(self, worker_id: int, reason: str) -> None:
        if worker_id in self._dead:
            return
        # Salvage whatever the worker managed to say (its crash message
        # carries the original traceback).
        handle = self._handles[worker_id]
        while True:
            message = handle.get_nowait()
            if message is None:
                break
            kind = message[0]
            if kind == "crash":
                reason = message[2]
            elif kind == "reply":
                # A reply that raced the crash past the grace read in
                # WorkerHandle.get (a process queue's feeder thread can
                # lag the exit): its request already failed, so drop
                # the payload but keep the piggybacked notices and
                # telemetry -- and never let it escape as a protocol
                # violation, which would crash the dispatcher inside
                # the crash-containment path itself.
                _k, _rid, _payload, notices, live, peak = message
                self._pending_notices.extend(notices)
                self._live_cache[worker_id] = live
                self._epoch_peak[worker_id] = peak
            else:
                self._absorb(worker_id, message)
        self._dead[worker_id] = reason
        # Batches already handed to the queue but never absorbed are
        # gone with the worker; account them so records +
        # dropped_records reconciles against the ingest count.  The
        # worker's absorbed total comes from its last-synced report --
        # anything it absorbed after that sync is over-counted as
        # dropped (a conservative, never-silent estimate).
        last = self._last_report.get(worker_id)
        absorbed = (
            sum(codec.decode_stats(row).records for row in last[0])
            if last is not None
            else 0
        )
        self.dropped_records += max(
            0, self._shipped.get(worker_id, 0) - absorbed
        )

    def _absorb(self, worker_id: int, message: tuple) -> None:
        """Handle one unsolicited outbound message."""
        kind = message[0]
        if kind == "notices":
            _kind, notices, live, peak = message
            self._pending_notices.extend(notices)
            self._live_cache[worker_id] = live
            self._epoch_peak[worker_id] = peak
        elif kind == "crash":
            self._mark_dead(worker_id, message[2])
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(
                f"unexpected message from worker {worker_id}: {message[0]!r}"
            )

    def _drain(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        while worker_id not in self._dead:
            message = handle.get_nowait()
            if message is None:
                return
            self._absorb(worker_id, message)

    def _post(self, worker_id: int, message: tuple) -> int:
        """Send a request (reply collected separately); returns req id."""
        self._req += 1
        handle = self._require_alive(worker_id)
        try:
            handle.put((message[0], self._req, *message[1:]))
        except WorkerCrashed as exc:
            self._mark_dead(worker_id, str(exc))
            raise self._crash_error(worker_id) from None
        return self._req

    def _collect(self, worker_id: int, req_id: int) -> Any:
        """Await one worker's reply, absorbing unsolicited messages."""
        handle = self._handles[worker_id]
        while True:
            try:
                message = handle.get()
            except WorkerCrashed as exc:
                self._mark_dead(worker_id, str(exc))
                raise self._crash_error(worker_id) from None
            if message[0] == "reply":
                _kind, rid, payload, notices, live, peak = message
                self._pending_notices.extend(notices)
                self._live_cache[worker_id] = live
                self._epoch_peak[worker_id] = peak
                if rid != req_id:  # pragma: no cover - protocol violation
                    raise RuntimeError(
                        f"worker {worker_id} answered request {rid}, "
                        f"expected {req_id}"
                    )
                if payload[0] == "err":
                    _ok, kind, text = payload
                    if kind == "KeyError":
                        raise KeyError(text)
                    raise RuntimeError(text)  # pragma: no cover
                return payload[1]
            self._absorb(worker_id, message)

    def _crash_error(self, worker_id: int) -> WorkerCrashed:
        return WorkerCrashed(
            f"worker {worker_id} crashed; shards "
            f"{self.shards_of_worker(worker_id)} are degraded.\n"
            f"{self._dead.get(worker_id, '')}"
        )

    def _request(self, worker_id: int, message: tuple) -> Any:
        return self._collect(worker_id, self._post(worker_id, message))

    def _require_running(self) -> None:
        """Queries and barriers against stopped workers would otherwise
        misread the silence as a fleet-wide crash (review finding):
        after shutdown() the workers are *gone*, not dead."""
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest(self, trace_id: TraceId, record: ReceiveRecord) -> None:
        """Route one record towards its shard's worker.

        O(1) buffering: the record joins its shard's outgoing batch and
        ships when the batch reaches ``wire_batch`` records (or at the
        next barrier).  Records for a crashed worker's shards are
        dropped and counted in :attr:`dropped_records` -- ingestion
        never stalls on a dead peer.  When a worker crashes,
        ``dropped_records`` also absorbs a conservative estimate of the
        records it had been shipped but never reported absorbing (its
        last-synced counters), so ``report().records +
        dropped_records`` reconciles against the ingest count instead
        of silently under-reporting in-flight loss.
        """
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")
        self._tick += 1
        shard = self._route.get(trace_id)
        if shard is None:
            if len(self._route) >= self._route_memo_max:
                self._route.clear()
            shard = self._route[trace_id] = self.shard_of(trace_id)
        buffer = self._buffers.setdefault(shard, [])
        buffer.append((self._tick, trace_id, codec.encode_record(record)))
        if len(buffer) >= self.wire_batch:
            self._ship(shard)

    def ingest_many(
        self, stream: Iterable[tuple[TraceId, ReceiveRecord]]
    ) -> None:
        """Consume an interleaved ``(trace_id, record)`` stream; the
        per-shard wire batching makes this the grouped bulk path by
        construction."""
        # The ingest hot loop, manually inlined: the per-record call
        # overhead of ingest() is measurable against a 2-worker speedup
        # floor on >10^4-record streams.
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")
        route = self._route
        buffers = self._buffers
        encode = codec.encode_record
        wire_batch = self.wire_batch
        tick = self._tick
        try:
            for trace_id, record in stream:
                tick += 1
                shard = route.get(trace_id)
                if shard is None:
                    if len(route) >= self._route_memo_max:
                        route.clear()
                    shard = route[trace_id] = self.shard_of(trace_id)
                buffer = buffers.get(shard)
                if buffer is None:
                    buffer = buffers[shard] = []
                buffer.append((tick, trace_id, encode(record)))
                if len(buffer) >= wire_batch:
                    self._tick = tick
                    self._ship(shard)
        finally:
            # Even when the *stream* raises mid-iteration, the ticks
            # already stamped onto buffered records must never be
            # reissued -- duplicate ticks would corrupt idle ages and
            # the deterministic violation-merge keys.
            self._tick = tick

    def _ship(self, shard: int) -> None:
        batch = self._buffers.pop(shard, None)
        if not batch:
            return
        worker_id = self.worker_of(shard)
        if worker_id in self._dead:
            self.dropped_records += len(batch)
            return
        handle = self._handles[worker_id]
        try:
            handle.put(("ingest", shard, batch))
        except WorkerCrashed as exc:
            self._mark_dead(worker_id, str(exc))
            self.dropped_records += len(batch)
            return
        self._shipped[worker_id] = self._shipped.get(worker_id, 0) + len(
            batch
        )
        # Opportunistic drain keeps violation notices (and live-event
        # telemetry) flowing during long pure-ingest phases.
        self._drain(worker_id)

    def _ship_all(self) -> None:
        for shard in sorted(self._buffers):
            self._ship(shard)

    # ------------------------------------------------------------------
    # barriers, rebalancing, violation firing
    # ------------------------------------------------------------------

    def _alive_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if w not in self._dead]

    def _barrier(self, command: str) -> dict[int, Any]:
        """Ship everything buffered, run one command on every live
        worker (pipelined: all posted, then all collected), note the
        epoch watermark, fire pending violations, maybe rebalance."""
        self._ship_all()
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(
                    worker_id, (command, self._tick)
                )
            except WorkerCrashed:
                continue
        replies: dict[int, Any] = {}
        for worker_id, req_id in posted.items():
            try:
                replies[worker_id] = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
        self._note_peak()
        self._fire_pending()
        if self.rebalance:
            self._rebalance()
        return replies

    def _note_peak(self) -> None:
        candidate = sum(self._epoch_peak.values())
        if candidate > self._peak:
            self._peak = candidate

    def _fire_pending(self) -> None:
        if not self._pending_notices:
            return
        batch = sorted(
            self._pending_notices, key=lambda n: (n[0], str(n[1]))
        )
        self._pending_notices.clear()
        self._fired_notices.extend(
            (tick, trace_id) for tick, trace_id, _w in batch
        )
        if self.on_violation is not None:
            for wire in batch:
                _tick, trace_id, witness = codec.decode_notice(wire)
                self.on_violation(trace_id, witness)

    def _rebalance(self) -> None:
        """Re-apportion the global budget by live-event demand.

        Demand-proportional with a per-worker floor (a quarter of the
        even split): a worker holding most of the fleet's live events
        gets most of the budget, so a skewed population does not
        overrun one worker's share while others idle under theirs.
        Each share change closes that worker's budget epoch (its peak
        watermark is collected pre-reset and folded into the fleet
        watermark) -- the accounting that keeps ``peak_live_events``
        sound across rebalances.
        """
        budget = self.event_budget
        alive = self._alive_workers()
        if budget is None or len(alive) < 1:
            return
        floor = max(1, budget // (4 * self.n_workers))
        demand = {w: self._live_cache.get(w, 0) + 1 for w in alive}
        total_demand = sum(demand.values())
        spendable = budget - floor * len(alive)
        if spendable < 0:
            shares = {w: budget // len(alive) for w in alive}
        else:
            shares = {
                w: floor + spendable * demand[w] // total_demand
                for w in alive
            }
        changed = {
            w: share
            for w, share in shares.items()
            if share != self._shares.get(w)
        }
        if not changed:
            return
        posted: dict[int, int] = {}
        for worker_id, share in changed.items():
            try:
                posted[worker_id] = self._post(
                    worker_id, ("budget", share)
                )
            except WorkerCrashed:
                continue
            self._shares[worker_id] = share
        for worker_id, req_id in posted.items():
            try:
                epoch_peak = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
            # Fold the *closed* epoch into the fleet watermark together
            # with the other workers' current-epoch peaks.
            current = dict(self._epoch_peak)
            current[worker_id] = epoch_peak
            candidate = sum(current.values())
            if candidate > self._peak:
                self._peak = candidate

    # ------------------------------------------------------------------
    # the serial surface
    # ------------------------------------------------------------------

    def flush(self, trace_id: TraceId | None = None) -> None:
        """Absorb pending records (of one trace, or of every trace).

        A full flush is a sync barrier: violation callbacks fire here,
        in the deterministic merged order."""
        self._require_running()
        if trace_id is None:
            self._barrier("flush")
            return
        shard = self.shard_of(trace_id)
        self._ship(shard)
        self._request(
            self.worker_of(shard), ("flush_trace", shard, trace_id)
        )

    def close(self, trace_id: TraceId) -> TraceSummary:
        """Retire a finished trace (serial semantics, one round trip)."""
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        wire = self._request(
            self.worker_of(shard), ("close", shard, trace_id)
        )
        # A closed trace usually never returns; drop its routing memo
        # entry (recomputed cheaply if it reopens).
        self._route.pop(trace_id, None)
        return codec.decode_summary(wire)

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        """The trace's exact running worst relevant ratio (its pending
        records shipped and flushed first)."""
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        wire = self._request(
            self.worker_of(shard), ("ratio", shard, trace_id)
        )
        return codec.decode_fraction(wire)

    def is_degraded(self, trace_id: TraceId) -> bool:
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        return self._request(
            self.worker_of(shard), ("degraded", shard, trace_id)
        )

    def _all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        self._require_running()
        replies = self._barrier("ratios")
        out: list[tuple[TraceId, Fraction | None]] = []
        for worker_id in sorted(replies):
            out.extend(
                (trace_id, codec.decode_fraction(wire))
                for trace_id, wire in replies[worker_id]
            )
        return out

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        return ratio_histogram(self._all_ratios())

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        return top_k_riskiest(self._all_ratios(), k)

    def violating_traces(self) -> tuple[TraceId, ...]:
        """Ids of violating traces in the deterministic merged order
        (ascending trigger tick, trace id as tie-break)."""
        self._require_running()
        self._barrier("flush")
        return self._violating_ids()

    def _violating_ids(self) -> tuple[TraceId, ...]:
        ordered = sorted(
            self._fired_notices, key=lambda n: (n[0], str(n[1]))
        )
        return tuple(dict.fromkeys(trace_id for _t, trace_id in ordered))

    def report(self) -> FleetReport:
        """A merged :class:`FleetReport` (a sync barrier).

        Crashed workers contribute their last-synced statistics and
        their shards are listed in ``crashed_shards``.
        """
        self._require_running()
        replies = self._barrier("report")
        self._last_report.update(replies)
        stats: list[ShardStats] = []
        open_traces = retired = degraded = overruns = 0
        for worker_id in sorted(self._last_report):
            wire_stats, w_open, w_retired, w_degraded, w_overruns = (
                self._last_report[worker_id]
            )
            stats.extend(codec.decode_stats(row) for row in wire_stats)
            open_traces += w_open
            retired += w_retired
            degraded += w_degraded
            overruns += w_overruns
        stats.sort(key=lambda s: s.shard)
        return FleetReport(
            xi=None if self.xi is None else Fraction(self.xi),
            n_shards=self.n_shards,
            batch_size=self.batch_size,
            event_budget=self.event_budget,
            open_traces=open_traces,
            retired_traces=retired,
            records=sum(s.records for s in stats),
            flushes=sum(s.flushes for s in stats),
            oracle_calls=sum(s.oracle_calls for s in stats),
            live_events=sum(s.live_events for s in stats),
            peak_live_events=self._peak,
            tombstoned_events=sum(s.tombstoned_events for s in stats),
            evictions=sum(s.evictions for s in stats),
            summary_compactions=sum(s.summary_compactions for s in stats),
            summary_edges=sum(s.summary_edges for s in stats),
            auto_retired=sum(s.auto_retired for s in stats),
            budget_overruns=overruns,
            degraded_traces=degraded,
            violating_traces=self._violating_ids(),
            shards=tuple(stats),
            auto_compactions=sum(s.auto_compactions for s in stats),
            crashed_shards=self.crashed_shards(),
        )

    def _counters(self) -> tuple[int, int, int]:
        """(live events, open traces, retired traces) across workers.

        A pure counter read -- no buffer shipping, no worker flushes,
        no callback firing, no rebalancing -- so polling these
        properties inside an ingest loop costs one round trip per
        worker and cannot collapse wire batching (the serial
        properties are pure reads too).  Counts therefore reflect
        *absorbed* records; batches still queued or buffered are not
        yet included.
        """
        self._require_running()
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(worker_id, ("counters",))
            except WorkerCrashed:
                continue
        live = opened = retired = 0
        for worker_id, req_id in posted.items():
            try:
                w_live, w_open, w_retired = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
            live += w_live
            opened += w_open
            retired += w_retired
        return live, opened, retired

    @property
    def live_events(self) -> int:
        """Total live digraph events across workers (absorbed records;
        see :meth:`_counters` for the read semantics)."""
        return self._counters()[0]

    @property
    def open_traces(self) -> int:
        return self._counters()[1]

    @property
    def retired_traces(self) -> int:
        return self._counters()[2]

    def __len__(self) -> int:
        _live, opened, retired = self._counters()
        return opened + retired

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Graceful drain: flush (a final barrier), stop workers, join.

        Idempotent.  The closing flush barrier runs *before* the fleet
        is marked stopped, so the last violation callbacks fire while
        re-entering the fleet is still legal (the reentrancy the serial
        fleet documents); the stop round after it cannot produce new
        violations (everything was just absorbed and nothing ingests in
        between).  Crashed workers are skipped -- their shards were
        already surfaced."""
        if self._stopped:
            return
        self._barrier("flush")
        self._stopped = True
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(worker_id, ("stop",))
            except WorkerCrashed:
                continue
        for worker_id, req_id in posted.items():
            try:
                self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
        self._note_peak()
        for worker_id in self._alive_workers():
            self._handles[worker_id].join()
        # Stragglers should not exist (see above); fired after the
        # joins so a misbehaving callback can never leave workers
        # unjoined.
        self._fire_pending()

    def __enter__(self) -> "ParallelFleet":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()

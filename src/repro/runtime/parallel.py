"""`ParallelFleet`: the serial fleet's surface, executed on workers.

The monitoring plane as an asynchronous system of independent workers:
trace records are hash-routed (the serial fleet's CRC32 routing,
unchanged) to shards, shards are partitioned round-robin across
``n_workers`` worker backends, and each worker drives its shard subset
as one :class:`~repro.runtime.shard.ShardGroup` -- the exact engine the
serial :class:`~repro.analysis.fleet.MonitorFleet` runs in process.
The facade keeps the serial surface: ``ingest``, ``ingest_many``,
``flush``, ``close``, ``worst_ratio``, ``is_degraded``, the aggregate
queries, and ``report`` returning the same :class:`FleetReport`.

**Bit-identity contract.**  A trace's worst ratio is a function of its
record sequence alone; the dispatcher preserves per-trace record order
(single-threaded routing into FIFO per-worker queues) and workers run
the serial engine with the serial watermark, so every per-trace worst
ratio, degradation flag, and the *set* of violating traces are
bit-identical to a serial ``MonitorFleet`` fed the same stream (two
narrow carve-outs below) --
property-tested across backends in ``tests/runtime/test_parallel.py``
and gated at scale by ``benchmarks/bench_parallel.py``.  What may
differ is scheduling-shaped metadata: flush counts (wire batching
coalesces flush boundaries), eviction/compaction counters (each worker
enforces its budget share against its own LRU order), and the *order*
of violation reporting (see below).  Two documented carve-outs.  First, *budget eviction on metadata-free
streams*: without ``record.sends`` announcements, eviction under an
``event_budget`` can cut a prefix an unseen in-flight message still
crosses (the documented degraded regime), and serial and parallel make
those unsafe cuts at different points -- one global LRU versus each
worker's LRU over its share -- so *which* traces end up flagged
``degraded`` (with honestly-flagged lower-bound ratios) can differ
between the front ends.  Streams carrying sends metadata keep eviction
exact everywhere, so the bit-identity contract is unaffected.  Second,
``auto_retire_after``.  Idle ages are measured in the same global
stream ticks as the serial fleet (each record's touch time is its
stream position), but a worker's clock advances only when it receives
a batch or a barrier, and retirement probes run at batch granularity
-- so *when* an idle trace retires is backend-dependent.  A trace that
is retired and then receives more records reopens degraded (by
design), and because shifting one retirement shifts every later
retire/reopen decision on that trace, serial and parallel can disagree
on which borderline-idle traces end up flagged -- in either direction.
Each front end remains individually sound (degraded ratios are
honestly-flagged lower bounds, everything else exact) and individually
deterministic; workloads without auto-retirement carry the full
bit-identity contract.

**Batching and backpressure.**  Ingestion buffers per shard and ships
``wire_batch``-record batches; a worker absorbs a batch through the
engine's bulk path (buffer all, flush watermark-crossers once).
Per-worker inboxes are bounded (``inbox_capacity`` batches): a full
inbox blocks the dispatcher in liveness-probing slices, so a slow
worker throttles ingestion instead of accumulating unbounded backlog,
and a dead one raises instead of hanging.

**Deterministic violation merge.**  Workers stamp each violation with
the violating trace's last absorbed global ingest tick at the
detecting flush (deterministic for a fixed fleet configuration --
flush boundaries, and with them the tick, depend on ``wire_batch``)
and push it unsolicited.  The dispatcher fires
``on_violation`` callbacks only at *sync barriers* (``flush()``,
``report()``, ``violating_traces()``, ``shutdown()`` -- points where
every worker has acknowledged everything dispatched before the
barrier), sorted by ``(tick, str(trace_id))``: the firing order is a
function of the call sequence, not of worker scheduling, and
``violating_traces()`` returns that merged order.

**Budget apportionment and rebalancing.**  A global ``event_budget``
is split evenly across workers at start; at each barrier the
dispatcher re-apportions it proportionally to the workers' live-event
demand (a floor keeps every worker operable).  Budget epochs make the
reported watermark sound: each worker's post-enforcement peak is reset
when its share changes, and the fleet-level ``peak_live_events`` is
the maximum over epochs of the summed per-worker peaks -- within an
epoch the shares are static and sum to at most the budget, so the
reported watermark can only *over*-estimate the true global peak,
never hide an overrun.

**Crash containment.**  A worker that dies (its own traceback, or a
vanished process) is marked dead at the next interaction: its shards
are reported in ``FleetReport.crashed_shards`` with their last-synced
statistics, records routed to them are dropped and counted
(``dropped_records``), per-trace queries against them raise
:class:`~repro.runtime.backends.WorkerCrashed` naming the worker and
shards -- and every other worker keeps serving.  No code path waits
unboundedly on a dead peer.

**Durability and recovery.**  With ``durability=`` configured (see
:class:`~repro.runtime.durable.Durability`), crash containment becomes
crash *recovery*: every ingested record is journaled write-ahead (its
frame reaches disk no later than its wire batch leaves the
dispatcher), periodic checkpoints store each worker's full
:meth:`~repro.runtime.shard.ShardGroup.snapshot`, and a dead worker is
respawned, handed its last snapshot, and replayed its journal suffix
-- the fleet then reports zero ``crashed_shards`` and bit-identical
per-trace ratios, degraded flags, and violating sets.  A whole fleet
restarts the same way: :meth:`ParallelFleet.restore` rebuilds the
dispatcher from the checkpoint metadata, restores every worker, and
replays the journals' contiguous tick prefix; the producer resumes
feeding from ``fleet.ingested_records``.  Recovery is bounded by
``max_recoveries`` per worker -- a deterministic poison record
eventually degrades the shards exactly as without durability.

**Placement and migration.**  Shard-to-worker placement is an explicit
table (initially the round-robin split), not a hash: the dispatcher
can :meth:`migrate_shard` a live shard -- open traces, retired
summaries, counters -- between workers (ship, fence, export, import,
repoint), and :meth:`rebalance_placement` moves the heaviest shards
off any worker whose live-event share exceeds a threshold multiple of
the mean, unpinning hash-skewed trace populations that the
budget-share rebalancing alone cannot fix.  Trace-to-shard routing is
untouched (the serial CRC32 function), so migration is invisible to
reported ratios; under durability every migration commits a
checkpoint, keeping journals and snapshots placement-consistent.
"""

from __future__ import annotations

import logging
import os
import time
from fractions import Fraction
from typing import Any, Callable, Iterable, Sequence

from repro.analysis.online import OnlineAbcMonitor
from repro.core.cycles import CycleClassification
from repro.core.events import ProcessId
from repro.core.kernel import resolve_kernel_name
from repro.obs import metrics as _obs_metrics
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.runtime import codec
from repro.runtime.backends import (
    ProcessBackend,
    ThreadBackend,
    WorkerCrashed,
    WorkerHandle,
)
from repro.runtime.durable import (
    Durability,
    DurableStore,
    contiguous_prefix,
    write_frames,
)
from repro.runtime.shard import (
    FleetReport,
    MonitorSpec,
    ShardStats,
    TraceId,
    TraceSummary,
    ratio_histogram,
    shard_index_of as _shard_index,
    top_k_riskiest,
)
from repro.sim.trace import ReceiveRecord

__all__ = ["ParallelFleet"]

logger = logging.getLogger(__name__)


class _DispatcherObs:
    """The dispatcher's instrument bundle on its own registry.

    Shipped-record and dispatch counters are deterministic (functions
    of the ingested stream for a fixed configuration); backpressure
    stalls, queue depths, and recovery counters are scheduling-shaped
    wall-clock facts and are not.
    """

    __slots__ = (
        "shipped",
        "batches",
        "batch_records",
        "route_ns",
        "ship_stalls",
        "stall_ns",
        "queue_depth",
        "recoveries",
        "replayed",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.shipped = registry.counter(
            "repro_dispatcher_shipped_records_total",
            help="records shipped to workers (wire rows)",
        )
        self.batches = registry.counter(
            "repro_dispatcher_shipped_batches_total",
            help="shard batches shipped to workers",
        )
        self.batch_records = registry.histogram(
            "repro_dispatcher_batch_records",
            deterministic=True,
            bounds=COUNT_BUCKETS,
            help="records per shipped shard batch",
        )
        self.route_ns = registry.histogram(
            "repro_stage_ns",
            (("stage", "dispatch_route"),),
            help="per-stage record-lifecycle latency",
        )
        self.ship_stalls = registry.counter(
            "repro_dispatcher_ship_stalls_total",
            deterministic=False,
            help="ship attempts that blocked on a full worker inbox",
        )
        self.stall_ns = registry.counter(
            "repro_dispatcher_stall_ns_total",
            deterministic=False,
            help="total time spent blocked on full worker inboxes",
        )
        self.queue_depth = registry.gauge(
            "repro_dispatcher_queue_depth",
            help="sum of worker inbox depths at the last snapshot",
        )
        self.recoveries = registry.counter(
            "repro_dispatcher_recoveries_total",
            deterministic=False,
            help="successful worker recoveries from the durability plane",
        )
        self.replayed = registry.counter(
            "repro_durable_replayed_records_total",
            deterministic=False,
            help="journal records replayed during worker recovery",
        )


class ParallelFleet:
    """The multi-worker fleet front end (see the module docstring).

    Args:
        xi: optional synchrony parameter, as in the serial fleet.
        n_workers: worker count (``>= 1``); shards are partitioned
            round-robin, so ``n_shards`` must be at least ``n_workers``.
        n_shards: global shard count (default 8, the serial default).
        batch_size: the serial per-trace flush watermark, applied
            unchanged inside each worker.
        event_budget: *global* live-event budget, apportioned across
            workers and rebalanced at barriers (``None`` disables).
        auto_retire_after: idle age in global ingest ticks (the
            dispatcher's record counter, so idleness means the same
            thing as in the serial fleet).  Retirement *timing* is
            batch-granular and therefore backend-dependent -- see the
            module docstring's carve-out.
        compact_threshold: adaptive compaction cadence, per monitor.
        faulty / drop_faulty: per-monitor message filtering.
        kernel: detection-kernel name shipped to every worker's shard
            group (``None`` lets each worker follow its own
            ``REPRO_KERNEL`` environment).  Every kernel is exact, so
            mixed-kernel fleets stay bit-identical to serial runs.
        backend: ``"process"`` (default), ``"thread"``, or a backend
            instance (anything with ``spawn(...) -> WorkerHandle``).
        start_method: multiprocessing start method for the default
            process backend.
        wire_batch: records per shard batch shipped to workers;
            the batching lever of the dispatcher (latency vs. framing
            overhead), invisible to reported ratios.
        inbox_capacity: bounded-inbox depth per worker, in batches
            (the backpressure lever).
        rebalance: re-apportion the budget by live-event demand at
            barriers (``False`` freezes the initial even split).
        monitor_factory: per-trace monitor customization as an
            arbitrary callable; requires a backend whose workers share
            the dispatcher's address space (the thread backend).  For
            process backends use ``monitor_specs``.
        monitor_specs: declarative per-trace monitor configuration --
            one :class:`~repro.runtime.shard.MonitorSpec` for every
            trace, or a ``{trace_id: MonitorSpec}`` mapping.  Plain
            data, so it crosses the process boundary (the
            ``monitor_factory`` gap, closed).
        durability: a :class:`~repro.runtime.durable.Durability` (or a
            directory path, for the defaults) enabling the journal +
            snapshot recovery plane -- see the module docstring.
        on_violation: ``callback(trace_id, witness)``, fired at sync
            barriers in the deterministic merged order.
        shard_subset: restrict this fleet to a subset of the global
            ``n_shards`` shard space (the *ingestion front* shape of
            :mod:`repro.runtime.net`: N fronts, each a fleet over a
            disjoint subset, together covering the space).  Routing is
            untouched -- ``shard_of`` still hashes over the global
            ``n_shards`` -- so a record whose trace hashes outside the
            subset is rejected with ``ValueError``; the caller (the
            ingest server) routes each trace to the front owning its
            shard.  ``None`` (the default) means the full space.
        tick_start / tick_step: the arithmetic progression of global
            ingest ticks this fleet stamps (record ``k`` gets tick
            ``tick_start + k*tick_step``).  Fronts interleave --
            front ``f`` of ``N`` uses ``tick_start=f+1, tick_step=N``
            -- so their tick ranges are disjoint and the merged
            violation order across fronts is deterministic, while
            idle ages keep global-stream meaning.  Durability
            requires the default ``(1, 1)`` progression (journal
            recovery claims assume +1 ticks).
    """

    def __init__(
        self,
        xi: Fraction | float | int | str | None = None,
        *,
        n_workers: int = 2,
        n_shards: int | None = None,
        batch_size: int = 32,
        event_budget: int | None = None,
        auto_retire_after: int | None = None,
        compact_threshold: float | None = None,
        faulty: frozenset[ProcessId] | set[ProcessId] = frozenset(),
        drop_faulty: bool = True,
        kernel: str | None = None,
        backend: str | Any = "process",
        start_method: str | None = None,
        wire_batch: int = 256,
        inbox_capacity: int = 16,
        rebalance: bool = True,
        monitor_factory: Callable[[TraceId], OnlineAbcMonitor] | None = None,
        monitor_specs: MonitorSpec | dict[TraceId, MonitorSpec] | None = None,
        durability: Durability | str | os.PathLike | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None] | None = None,
        shard_subset: Iterable[int] | None = None,
        tick_start: int = 1,
        tick_step: int = 1,
        _restore: tuple[dict, dict] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_shards is None:
            n_shards = max(8, n_workers)
        if shard_subset is not None:
            shard_subset = tuple(sorted(set(shard_subset)))
            if not all(0 <= s < n_shards for s in shard_subset):
                raise ValueError(
                    f"shard_subset {shard_subset} must lie within "
                    f"range({n_shards})"
                )
            if len(shard_subset) < n_workers:
                raise ValueError(
                    f"shard_subset holds {len(shard_subset)} shards; "
                    f"every one of the {n_workers} workers needs one"
                )
        elif n_shards < n_workers:
            raise ValueError(
                f"n_shards ({n_shards}) must be at least n_workers "
                f"({n_workers}): every worker needs a shard"
            )
        if tick_step < 1:
            raise ValueError("tick_step must be positive")
        if tick_start < 1:
            raise ValueError("tick_start must be positive")
        if durability is not None and (tick_start != 1 or tick_step != 1):
            raise ValueError(
                "durability requires the default tick progression "
                "(tick_start=1, tick_step=1): journal recovery claims "
                "assume +1 ticks"
            )
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if wire_batch < 1:
            raise ValueError("wire_batch must be positive")
        if inbox_capacity < 1:
            # Queue(maxsize=0) means *unbounded* -- the opposite of
            # what a caller asking for the tightest bound intends, and
            # it silently voids the backpressure guarantee.
            raise ValueError("inbox_capacity must be positive")
        if compact_threshold is not None and compact_threshold <= 1:
            raise ValueError(
                "compact_threshold must exceed 1, got "
                f"{compact_threshold}"
            )
        if event_budget is not None and event_budget < n_workers:
            raise ValueError(
                "event_budget must be at least n_workers (every worker "
                f"needs a positive share), got {event_budget}"
            )
        if auto_retire_after is not None and auto_retire_after < 1:
            raise ValueError("auto_retire_after must be positive (or None)")
        if backend == "process":
            backend = ProcessBackend(start_method)
        elif backend == "thread":
            backend = ThreadBackend()
        elif isinstance(backend, str):
            raise ValueError(
                f"unknown backend {backend!r}: choose 'process', 'thread', "
                "or pass a backend instance"
            )
        if monitor_factory is not None and not getattr(
            backend, "supports_callables", False
        ):
            raise ValueError(
                "monitor_factory requires a shared-address-space backend "
                "(backend='thread'); it cannot cross a process boundary "
                "-- use monitor_specs for picklable configuration"
            )
        if monitor_specs is not None and not isinstance(
            monitor_specs, (MonitorSpec, dict)
        ):
            raise TypeError(
                "monitor_specs must be a MonitorSpec or a "
                "{trace_id: MonitorSpec} mapping"
            )
        if isinstance(durability, (str, os.PathLike)):
            durability = Durability(root=durability)
        self._xi = xi
        self._n_shards = n_shards
        self._n_workers = n_workers
        self._batch_size = batch_size
        self._event_budget = event_budget
        self._auto_retire_after = auto_retire_after
        self._compact_threshold = compact_threshold
        self._faulty = frozenset(faulty)
        self._drop_faulty = drop_faulty
        if kernel is not None:
            resolve_kernel_name(kernel)  # fail in the caller, not a worker
        self._kernel = kernel
        self._monitor_factory = monitor_factory
        self._monitor_specs = monitor_specs
        self._inbox_capacity = inbox_capacity
        self.wire_batch = wire_batch
        self.rebalance = rebalance
        self.on_violation = on_violation
        self._backend = backend
        if isinstance(backend, ProcessBackend):
            self._backend_kind = "process"
        elif isinstance(backend, ThreadBackend):
            self._backend_kind = "thread"
        else:
            self._backend_kind = "custom"
        self._tick_start = tick_start
        self._tick_step = tick_step
        self._tick = tick_start - tick_step
        # Records accepted (== the tick only for the default +1
        # progression; a front stamping every N-th tick still counts
        # every record it accepted).
        self._ingested = 0
        self._req = 0
        self._stopped = False
        self.dropped_records = 0
        # Telemetry: the dispatcher's own registry (None when disabled)
        # plus a per-worker cache of the last collected rows, so a
        # crashed worker's contribution survives in merged snapshots
        # (the _last_report pattern).
        self._metrics: MetricsRegistry | None = (
            _obs_metrics.MetricsRegistry() if _obs_metrics.enabled() else None
        )
        self._obs: _DispatcherObs | None = (
            _DispatcherObs(self._metrics) if self._metrics is not None else None
        )
        self._last_metrics: dict[int, tuple] = {}
        # Handle stall counters already folded into the registry (the
        # handles keep cumulative counts; folding takes deltas).
        self._stall_folded: dict[int, tuple[int, int]] = {}
        # Explicit shard -> worker placement (initially the round-robin
        # split over the owned shard space; migration repoints live).
        owned = (
            tuple(range(n_shards)) if shard_subset is None else shard_subset
        )
        self._placement: dict[int, int] = (
            {int(s): int(w) for s, w in _restore[0]["placement"].items()}
            if _restore is not None
            else {s: i % n_workers for i, s in enumerate(owned)}
        )
        # The durability plane (None = PR 5 crash containment only).
        self._durability = durability
        self._durable = (
            DurableStore(
                durability.root,
                fsync=durability.fsync,
                metrics=self._metrics,
            )
            if durability is not None
            else None
        )
        self._ckpt_epoch = 0
        self._ckpt_tick = 0
        self._records_since_ckpt = 0
        self._in_checkpoint = False
        self._recoveries: dict[int, int] = {}
        # Dropped-record estimates of crashed-but-recoverable workers:
        # folded into dropped_records only if recovery fails for good.
        self._pending_drop: dict[int, int] = {}
        # Last committed checkpoint's snapshot frames, by worker.
        self._snap_cache: dict[int, tuple] = {}
        if (
            self._durable is not None
            and _restore is None
            and (self._durable.root / "meta.bin").exists()
        ):
            raise ValueError(
                f"{self._durable.root} already holds a committed fleet "
                "checkpoint; use ParallelFleet.restore() to resume it, "
                "or point durability at a fresh directory"
            )
        # Violation notices: pending rows are (tick, trace_id, wire
        # witness); once fired only (tick, trace_id) is retained -- a
        # long-running fleet must not hold every witness walk forever.
        self._pending_notices: list[tuple] = []
        self._fired_notices: list[tuple[int, TraceId]] = []
        # Worst-ratio updates piggybacked on worker messages, coalesced
        # last-wins per trace (wire-encoded fractions); drained by the
        # delta plane via drain_ratio_updates().
        self._ratio_updates: dict[TraceId, tuple[int, int] | None] = {}
        # Per-shard outgoing buffers of (tick, trace_id, encoded record).
        self._buffers: dict[int, list[tuple]] = {}
        # trace id -> shard memo: routing hashes each id once, not once
        # per record (the ingest hot path).  Bounded: on unbounded
        # trace populations (the workloads auto-retirement and the
        # event budget exist to survive) the memo is cleared and
        # rebuilt rather than growing one entry per id forever --
        # routing is a cheap pure function, the memo is only a cache.
        self._route: dict[TraceId, int] = {}
        self._route_memo_max = 1 << 18
        # Worker bookkeeping.
        self._dead: dict[int, str] = {}
        # Records shipped per worker: reconciles in-flight loss when a
        # worker crashes (see _mark_dead).
        self._shipped: dict[int, int] = {}
        self._live_cache: dict[int, int] = {}
        self._epoch_peak: dict[int, int] = {}
        self._last_report: dict[int, tuple] = {}
        self._peak = 0
        if _restore is not None:
            self._shares: dict[int, int | None] = {
                int(w): share for w, share in _restore[0]["shares"].items()
            }
        else:
            share = None
            if event_budget is not None:
                share = event_budget // n_workers
            self._shares = {
                w: (share + 1 if share is not None
                    and w < event_budget - share * n_workers else share)
                for w in range(n_workers)
            }
        self._handles: list[WorkerHandle] = []
        for worker_id in range(n_workers):
            self._handles.append(
                backend.spawn(
                    worker_id,
                    self.shards_of_worker(worker_id),
                    self._worker_config(worker_id),
                    inbox_capacity,
                )
            )
        if _restore is not None:
            meta = _restore[0]
            self._tick = meta["tick"]
            self._ingested = meta["tick"]
            self._ckpt_epoch = meta["epoch"]
            self._ckpt_tick = meta["tick"]
            self._fired_notices = list(meta["fired_notices"])
            self.dropped_records = meta["dropped_records"]
            self._peak = meta["peak"]
            self._recoveries = {
                int(w): n for w, n in meta["recoveries"].items()
            }
            self._dead = {int(w): r for w, r in meta["dead"].items()}
        elif self._durable is not None:
            # Epoch-1 baseline: empty snapshots plus the full
            # configuration, so both worker recovery and a whole-fleet
            # restore work before the first periodic checkpoint.
            self._checkpoint()

    def _worker_config(self, worker_id: int) -> dict[str, Any]:
        """The spawn-time config dict (also used by recovery respawns)."""
        config = {
            "xi": codec.encode_fraction(
                None if self._xi is None else Fraction(self._xi)
            ),
            "batch_size": self._batch_size,
            "event_budget": self._shares.get(worker_id),
            "auto_retire_after": self._auto_retire_after,
            "compact_threshold": self._compact_threshold,
            "faulty": tuple(self._faulty),
            "drop_faulty": self._drop_faulty,
            "kernel": self._kernel,
            "monitor_specs": codec.encode_specs(self._monitor_specs),
            # Pin the parent's telemetry setting in the child: fork
            # inherits it anyway, spawn would re-read only REPRO_OBS
            # and miss a programmatic set_enabled().
            "obs": _obs_metrics.enabled(),
        }
        if self._monitor_factory is not None:
            config["monitor_factory"] = self._monitor_factory
        return config

    # ------------------------------------------------------------------
    # spawn-time configuration (read-only: these were shipped to the
    # workers at spawn, and there is no re-propagation protocol --
    # unlike the serial fleet's in-process retunable properties, a
    # write here would change only what report() echoes while every
    # worker kept the old value.  Assignment therefore raises instead
    # of silently lying.)
    # ------------------------------------------------------------------

    @property
    def xi(self) -> Fraction | float | int | str | None:
        return self._xi

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def event_budget(self) -> int | None:
        return self._event_budget

    @property
    def kernel(self) -> str | None:
        return self._kernel

    # ------------------------------------------------------------------
    # routing and low-level messaging
    # ------------------------------------------------------------------

    def shard_of(self, trace_id: TraceId) -> int:
        """The (serial-identical) shard index ``trace_id`` routes to."""
        return _shard_index(trace_id, self.n_shards)

    def worker_of(self, shard_index: int) -> int:
        """The worker currently owning a shard (placement-table read;
        initially the round-robin split, repointed by migration)."""
        return self._placement[shard_index]

    def shards_of_worker(self, worker_id: int) -> tuple[int, ...]:
        return tuple(
            sorted(
                shard
                for shard, owner in self._placement.items()
                if owner == worker_id
            )
        )

    @property
    def placement(self) -> dict[int, int]:
        """A copy of the shard -> worker placement table."""
        return dict(self._placement)

    def crashed_shards(self) -> tuple[int, ...]:
        """Shards owned by dead workers, ascending (empty = all healthy)."""
        return tuple(
            sorted(
                shard
                for worker_id in self._dead
                for shard in self.shards_of_worker(worker_id)
            )
        )

    def _require_alive(self, worker_id: int) -> WorkerHandle:
        if worker_id in self._dead and not self._try_recover(worker_id):
            raise self._crash_error(worker_id)
        return self._handles[worker_id]

    def _mark_dead(self, worker_id: int, reason: str) -> None:
        if worker_id in self._dead:
            return
        # Salvage whatever the worker managed to say (its crash message
        # carries the original traceback).
        handle = self._handles[worker_id]
        while True:
            message = handle.get_nowait()
            if message is None:
                break
            kind = message[0]
            if kind == "crash":
                reason = message[2]
            elif kind == "reply":
                # A reply that raced the crash past the grace read in
                # WorkerHandle.get (a process queue's feeder thread can
                # lag the exit): its request already failed, so drop
                # the payload but keep the piggybacked notices and
                # telemetry -- and never let it escape as a protocol
                # violation, which would crash the dispatcher inside
                # the crash-containment path itself.
                _k, _rid, _payload, notices, ratios, live, peak = message
                self._pending_notices.extend(notices)
                self._ratio_updates.update(ratios)
                self._live_cache[worker_id] = live
                self._epoch_peak[worker_id] = peak
            else:
                self._absorb(worker_id, message)
        self._dead[worker_id] = reason
        logger.error(
            "containing crash of worker %d (shards %s): %s",
            worker_id,
            ",".join(map(str, self.shards_of_worker(worker_id))),
            reason,
        )
        # Batches already handed to the queue but never absorbed are
        # gone with the worker; account them so records +
        # dropped_records reconciles against the ingest count.  The
        # worker's absorbed total comes from its last-synced report --
        # anything it absorbed after that sync is over-counted as
        # dropped (a conservative, never-silent estimate).
        last = self._last_report.get(worker_id)
        absorbed = (
            sum(codec.decode_stats(row).records for row in last[0])
            if last is not None
            else 0
        )
        estimate = max(0, self._shipped.get(worker_id, 0) - absorbed)
        if self._recoverable(worker_id):
            # Recovery will replay these records from the journal; the
            # estimate is only charged if recovery fails for good.
            self._pending_drop[worker_id] = estimate
        else:
            self.dropped_records += estimate + self._pending_drop.pop(
                worker_id, 0
            )

    def _recoverable(self, worker_id: int) -> bool:
        return (
            self._durable is not None
            and not self._stopped
            and self._recoveries.get(worker_id, 0)
            < self._durability.max_recoveries
        )

    def _try_recover(self, worker_id: int) -> bool:
        """Respawn a dead worker from its snapshot + journal suffix.

        Returns ``True`` when the worker is (back) alive.  One attempt
        per call, ``max_recoveries`` attempts per worker overall: a
        deterministic poison record crashes the respawn during replay,
        burns one attempt, and eventually leaves the worker dead -- the
        PR 5 degraded-shards behavior, now a fallback instead of the
        only answer.
        """
        if worker_id not in self._dead:
            return True
        if not self._recoverable(worker_id):
            self.dropped_records += self._pending_drop.pop(worker_id, 0)
            return False
        self._recoveries[worker_id] = (
            self._recoveries.get(worker_id, 0) + 1
        )
        logger.info(
            "recovering worker %d (attempt %d of %d)",
            worker_id,
            self._recoveries[worker_id],
            self._durability.max_recoveries,
        )
        shards = self.shards_of_worker(worker_id)
        handle = self._backend.spawn(
            worker_id,
            shards,
            self._worker_config(worker_id),
            self._inbox_capacity,
        )
        self._handles[worker_id] = handle
        del self._dead[worker_id]
        self._live_cache[worker_id] = 0
        self._epoch_peak[worker_id] = 0
        self._stall_folded[worker_id] = (0, 0)
        replayed = 0
        try:
            snap = self._snap_cache.get(worker_id)
            if snap is not None:
                self._request(worker_id, ("restore", snap))
            # Replay the journal suffix.  Records still sitting in the
            # dispatcher's per-shard buffers were journaled at ingest
            # time too, so the replay delivers them as well -- drop the
            # buffers to keep delivery exactly-once.
            frames = self._durable.wal_frames(worker_id, self._ckpt_tick)
            by_shard: dict[int, list[tuple]] = {}
            for tick, shard, trace_id, wire in frames:
                by_shard.setdefault(shard, []).append(
                    (tick, trace_id, wire)
                )
            for shard in sorted(by_shard):
                replayed += len(by_shard[shard])
                handle.put(("ingest", shard, by_shard[shard]))
            for shard in shards:
                self._buffers.pop(shard, None)
            self._request(worker_id, ("fence", self._tick))
        except WorkerCrashed:
            logger.warning(
                "recovery of worker %d crashed during replay", worker_id
            )
            return False
        # Replay re-detects violations whose first notice already fired
        # before the crash (the snapshot predates the detection); keep
        # callbacks once-per-detection by dropping those re-detections.
        fired = {trace_id for _tick, trace_id in self._fired_notices}
        owned = set(shards)
        self._pending_notices = [
            notice
            for notice in self._pending_notices
            if not (
                notice[1] in fired and self.shard_of(notice[1]) in owned
            )
        ]
        # Refresh the last-synced report so future crash accounting
        # starts from the recovered state, not the pre-crash one.
        try:
            reply = self._request(worker_id, ("report", self._tick))
        except WorkerCrashed:
            return False
        self._last_report[worker_id] = reply
        self._shipped[worker_id] = sum(
            codec.decode_stats(row).records for row in reply[0]
        )
        self._pending_drop.pop(worker_id, None)
        logger.info(
            "worker %d recovered: %d journal records replayed",
            worker_id,
            replayed,
        )
        if self._obs is not None:
            self._obs.recoveries.inc()
            self._obs.replayed.inc(replayed)
        return True

    def _absorb(self, worker_id: int, message: tuple) -> None:
        """Handle one unsolicited outbound message."""
        kind = message[0]
        if kind == "notices":
            _kind, notices, ratios, live, peak = message
            self._pending_notices.extend(notices)
            self._ratio_updates.update(ratios)
            self._live_cache[worker_id] = live
            self._epoch_peak[worker_id] = peak
        elif kind == "crash":
            self._mark_dead(worker_id, message[2])
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(
                f"unexpected message from worker {worker_id}: {message[0]!r}"
            )

    def _drain(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        while worker_id not in self._dead:
            message = handle.get_nowait()
            if message is None:
                return
            self._absorb(worker_id, message)

    def _post(self, worker_id: int, message: tuple) -> int:
        """Send a request (reply collected separately); returns req id."""
        self._req += 1
        handle = self._require_alive(worker_id)
        try:
            handle.put((message[0], self._req, *message[1:]))
        except WorkerCrashed as exc:
            self._mark_dead(worker_id, str(exc))
            raise self._crash_error(worker_id) from None
        return self._req

    def _collect(self, worker_id: int, req_id: int) -> Any:
        """Await one worker's reply, absorbing unsolicited messages."""
        handle = self._handles[worker_id]
        while True:
            try:
                message = handle.get()
            except WorkerCrashed as exc:
                self._mark_dead(worker_id, str(exc))
                raise self._crash_error(worker_id) from None
            if message[0] == "reply":
                _kind, rid, payload, notices, ratios, live, peak = message
                self._pending_notices.extend(notices)
                self._ratio_updates.update(ratios)
                self._live_cache[worker_id] = live
                self._epoch_peak[worker_id] = peak
                if rid != req_id:  # pragma: no cover - protocol violation
                    raise RuntimeError(
                        f"worker {worker_id} answered request {rid}, "
                        f"expected {req_id}"
                    )
                if payload[0] == "err":
                    _ok, kind, text = payload
                    if kind == "KeyError":
                        raise KeyError(text)
                    raise RuntimeError(text)  # pragma: no cover
                return payload[1]
            self._absorb(worker_id, message)

    def _crash_error(self, worker_id: int) -> WorkerCrashed:
        return WorkerCrashed(
            f"worker {worker_id} crashed; shards "
            f"{self.shards_of_worker(worker_id)} are degraded.\n"
            f"{self._dead.get(worker_id, '')}"
        )

    def _request(self, worker_id: int, message: tuple) -> Any:
        return self._collect(worker_id, self._post(worker_id, message))

    def _require_running(self) -> None:
        """Queries and barriers against stopped workers would otherwise
        misread the silence as a fleet-wide crash (review finding):
        after shutdown() the workers are *gone*, not dead."""
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest(self, trace_id: TraceId, record: ReceiveRecord) -> None:
        """Route one record towards its shard's worker.

        O(1) buffering: the record joins its shard's outgoing batch and
        ships when the batch reaches ``wire_batch`` records (or at the
        next barrier).  Records for a crashed worker's shards are
        dropped and counted in :attr:`dropped_records` -- ingestion
        never stalls on a dead peer.  When a worker crashes,
        ``dropped_records`` also absorbs a conservative estimate of the
        records it had been shipped but never reported absorbing (its
        last-synced counters), so ``report().records +
        dropped_records`` reconciles against the ingest count instead
        of silently under-reporting in-flight loss.
        """
        self.ingest_wire(trace_id, codec.encode_record(record))

    def ingest_wire(self, trace_id: TraceId, wire_record: tuple) -> None:
        """:meth:`ingest` for an already-encoded record: the zero-copy
        entry of the network ingestion plane, where producers ship
        codec wire tuples and the server hands them through without a
        decode/re-encode round trip."""
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")
        shard = self._route.get(trace_id)
        if shard is None:
            # Routing first: a subset-rejected record must not burn a
            # tick (fronts share the global tick space).
            shard = self._route_miss(trace_id)
        self._tick += self._tick_step
        self._ingested += 1
        buffer = self._buffers.setdefault(shard, [])
        buffer.append((self._tick, trace_id, wire_record))
        if self._durable is not None:
            self._durable.append(
                self._placement[shard],
                self._tick,
                shard,
                trace_id,
                wire_record,
            )
            self._records_since_ckpt += 1
        if len(buffer) >= self.wire_batch:
            self._ship(shard)
            self._maybe_checkpoint()

    def _route_miss(self, trace_id: TraceId) -> int:
        """Fill the routing memo for one trace, validating subset
        ownership (a front must never silently buffer a record for a
        shard another front owns)."""
        if len(self._route) >= self._route_memo_max:
            self._route.clear()
        shard = self.shard_of(trace_id)
        if shard not in self._placement:
            raise ValueError(
                f"trace {trace_id!r} hashes to shard {shard}, which this "
                "fleet does not own -- route it to the front whose "
                "shard_subset holds that shard"
            )
        self._route[trace_id] = shard
        return shard

    def ingest_many(
        self, stream: Iterable[tuple[TraceId, ReceiveRecord]]
    ) -> None:
        """Consume an interleaved ``(trace_id, record)`` stream; the
        per-shard wire batching makes this the grouped bulk path by
        construction."""
        # The ingest hot loop, manually inlined: the per-record call
        # overhead of ingest() is measurable against a 2-worker speedup
        # floor on >10^4-record streams.
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")
        route = self._route
        buffers = self._buffers
        encode = codec.encode_record
        wire_batch = self.wire_batch
        durable = self._durable
        placement = self._placement
        step = self._tick_step
        tick = self._tick
        accepted = 0
        try:
            for trace_id, record in stream:
                shard = route.get(trace_id)
                if shard is None:
                    shard = self._route_miss(trace_id)
                tick += step
                accepted += 1
                buffer = buffers.get(shard)
                if buffer is None:
                    buffer = buffers[shard] = []
                wire = encode(record)
                buffer.append((tick, trace_id, wire))
                if durable is not None:
                    durable.append(
                        placement[shard], tick, shard, trace_id, wire
                    )
                    self._records_since_ckpt += 1
                if len(buffer) >= wire_batch:
                    self._tick = tick
                    self._ship(shard)
                    if durable is not None:
                        self._maybe_checkpoint()
        finally:
            # Even when the *stream* raises mid-iteration, the ticks
            # already stamped onto buffered records must never be
            # reissued -- duplicate ticks would corrupt idle ages and
            # the deterministic violation-merge keys.
            self._tick = tick
            self._ingested += accepted

    def ingest_wire_many(
        self, rows: Iterable[tuple[TraceId, tuple]]
    ) -> None:
        """Bulk :meth:`ingest_wire`: consume ``(trace_id, wire_record)``
        rows.  The ingestion front's hot loop -- produce frames arrive
        as wire rows, and re-encoding (or even decoding) each record
        on the dispatch path would pay the codec twice per record.
        """
        if self._stopped:
            raise RuntimeError("the fleet has been shut down")
        route = self._route
        buffers = self._buffers
        wire_batch = self.wire_batch
        durable = self._durable
        placement = self._placement
        step = self._tick_step
        tick = self._tick
        accepted = 0
        try:
            for trace_id, wire in rows:
                shard = route.get(trace_id)
                if shard is None:
                    shard = self._route_miss(trace_id)
                tick += step
                accepted += 1
                buffer = buffers.get(shard)
                if buffer is None:
                    buffer = buffers[shard] = []
                buffer.append((tick, trace_id, wire))
                if durable is not None:
                    durable.append(
                        placement[shard], tick, shard, trace_id, wire
                    )
                    self._records_since_ckpt += 1
                if len(buffer) >= wire_batch:
                    self._tick = tick
                    self._ship(shard)
                    if durable is not None:
                        self._maybe_checkpoint()
        finally:
            self._tick = tick
            self._ingested += accepted

    def ingest_wire_columns(
        self,
        trace_ids: Sequence[TraceId],
        wire_records: Sequence[tuple],
    ) -> None:
        """Columnar :meth:`ingest_wire_many`: two parallel columns, as
        carried by the columnar produce frame of the network plane.

        Routing and per-shard buffering are inherently row-oriented
        (each record joins its shard's ``(tick, trace_id, wire)``
        batch), so the columns are re-paired with one C-speed ``zip``;
        the zero-object payoff happens on the worker side, where the
        shard batch is transposed back into columns and absorbed
        without building a single record.  A ragged frame (column
        lengths disagree) raises ``ValueError`` here, before any row
        is buffered.
        """
        if len(trace_ids) != len(wire_records):
            raise ValueError(
                f"ragged columnar frame: {len(trace_ids)} trace ids, "
                f"{len(wire_records)} records"
            )
        self.ingest_wire_many(zip(trace_ids, wire_records))

    def _ship(self, shard: int) -> None:
        batch = self._buffers.pop(shard, None)
        if not batch:
            return
        obs = self._obs
        route_start = 0 if obs is None else time.perf_counter_ns()
        worker_id = self.worker_of(shard)
        if worker_id in self._dead:
            if self._try_recover(worker_id):
                # The popped batch was journaled at ingest time, so the
                # recovery replay already delivered it.
                return
            self.dropped_records += len(batch)
            return
        handle = self._handles[worker_id]
        if self._durable is not None:
            # Write-ahead: the journal holds every record before its
            # wire batch leaves the dispatcher.
            self._durable.flush(worker_id)
        try:
            handle.put(("ingest", shard, batch))
        except WorkerCrashed as exc:
            self._mark_dead(worker_id, str(exc))
            if self._try_recover(worker_id):
                return  # journaled above; the replay delivered it
            self.dropped_records += len(batch)
            return
        self._shipped[worker_id] = self._shipped.get(worker_id, 0) + len(
            batch
        )
        if obs is not None:
            obs.route_ns.observe(time.perf_counter_ns() - route_start)
            obs.shipped.inc(len(batch))
            obs.batches.inc()
            obs.batch_records.observe(len(batch))
        # Opportunistic drain keeps violation notices (and live-event
        # telemetry) flowing during long pure-ingest phases.
        self._drain(worker_id)

    def _ship_all(self) -> None:
        for shard in sorted(self._buffers):
            self._ship(shard)

    # ------------------------------------------------------------------
    # barriers, rebalancing, violation firing
    # ------------------------------------------------------------------

    def _alive_workers(self) -> list[int]:
        return [w for w in range(self.n_workers) if w not in self._dead]

    def _barrier(self, command: str) -> dict[int, Any]:
        """Ship everything buffered, run one command on every live
        worker (pipelined: all posted, then all collected), note the
        epoch watermark, fire pending violations, maybe rebalance."""
        if self._durable is not None:
            for worker_id in list(self._dead):
                self._try_recover(worker_id)
        self._ship_all()
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(
                    worker_id, (command, self._tick)
                )
            except WorkerCrashed:
                continue
        replies: dict[int, Any] = {}
        for worker_id, req_id in posted.items():
            try:
                replies[worker_id] = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
        self._note_peak()
        self._fire_pending()
        if self.rebalance:
            self._rebalance()
        return replies

    def _note_peak(self) -> None:
        candidate = sum(self._epoch_peak.values())
        if candidate > self._peak:
            self._peak = candidate

    def _fire_pending(self) -> None:
        if not self._pending_notices:
            return
        batch = sorted(
            self._pending_notices, key=lambda n: (n[0], str(n[1]))
        )
        self._pending_notices.clear()
        self._fired_notices.extend(
            (tick, trace_id) for tick, trace_id, _w in batch
        )
        if self.on_violation is not None:
            for wire in batch:
                _tick, trace_id, witness = codec.decode_notice(wire)
                self.on_violation(trace_id, witness)

    def _rebalance(self) -> None:
        """Re-apportion the global budget by live-event demand.

        Demand-proportional with a per-worker floor (a quarter of the
        even split): a worker holding most of the fleet's live events
        gets most of the budget, so a skewed population does not
        overrun one worker's share while others idle under theirs.
        Each share change closes that worker's budget epoch (its peak
        watermark is collected pre-reset and folded into the fleet
        watermark) -- the accounting that keeps ``peak_live_events``
        sound across rebalances.
        """
        budget = self.event_budget
        alive = self._alive_workers()
        if budget is None or len(alive) < 1:
            return
        floor = max(1, budget // (4 * self.n_workers))
        demand = {w: self._live_cache.get(w, 0) + 1 for w in alive}
        total_demand = sum(demand.values())
        spendable = budget - floor * len(alive)
        if spendable < 0:
            shares = {w: budget // len(alive) for w in alive}
        else:
            shares = {
                w: floor + spendable * demand[w] // total_demand
                for w in alive
            }
        changed = {
            w: share
            for w, share in shares.items()
            if share != self._shares.get(w)
        }
        if not changed:
            return
        posted: dict[int, int] = {}
        for worker_id, share in changed.items():
            try:
                posted[worker_id] = self._post(
                    worker_id, ("budget", share)
                )
            except WorkerCrashed:
                continue
            self._shares[worker_id] = share
        for worker_id, req_id in posted.items():
            try:
                epoch_peak = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
            # Fold the *closed* epoch into the fleet watermark together
            # with the other workers' current-epoch peaks.
            current = dict(self._epoch_peak)
            current[worker_id] = epoch_peak
            candidate = sum(current.values())
            if candidate > self._peak:
                self._peak = candidate

    # ------------------------------------------------------------------
    # durability: checkpoints and whole-fleet restore
    # ------------------------------------------------------------------

    @property
    def ingested_records(self) -> int:
        """Records accepted so far.  After :meth:`restore` this is the
        count the recovered state provably covers -- the producer
        resumes feeding from here.  (Equal to the last stamped tick
        only under the default +1 tick progression; an interleaved
        front counts its own records.)"""
        return self._ingested

    def _maybe_checkpoint(self) -> None:
        every = (
            None
            if self._durability is None
            else self._durability.checkpoint_every
        )
        if (
            every is not None
            and self._records_since_ckpt >= every
            and not self._in_checkpoint
        ):
            self._checkpoint()

    def checkpoint(self) -> None:
        """Commit a durable checkpoint now (snapshot barrier + journal
        reset).  Periodic checkpoints run automatically every
        ``Durability.checkpoint_every`` records; this forces one."""
        self._require_running()
        if self._durable is None:
            raise RuntimeError("this fleet has no durability configured")
        self._checkpoint()

    def _checkpoint(self) -> None:
        if self._in_checkpoint:
            return
        self._in_checkpoint = True
        try:
            # A worker whose death is first *detected* inside the
            # snapshot barrier contributes no snapshot to that round.
            # Committing anyway would delete the journal frames its
            # recovery still needs (and evict its cached snapshot) --
            # silent state loss.  So: while any dead worker is still
            # recoverable, recover it (the barrier preamble does) and
            # re-run the barrier.  Each failed attempt burns recovery
            # budget, so the loop terminates; a worker that exhausts
            # its budget is dropped from the checkpoint exactly like
            # any other permanently-degraded worker.
            while True:
                snapshots = self._barrier("snapshot")
                if not any(
                    self._recoverable(worker_id)
                    for worker_id in self._dead
                ):
                    break
            self._snap_cache = dict(snapshots)
            meta = {
                "epoch": self._ckpt_epoch + 1,
                "tick": self._tick,
                "placement": dict(self._placement),
                "shares": dict(self._shares),
                "fired_notices": list(self._fired_notices),
                "dropped_records": self.dropped_records,
                "peak": self._peak,
                "recoveries": dict(self._recoveries),
                "dead": dict(self._dead),
                "config": self._config_meta(),
            }
            self._durable.checkpoint(meta, snapshots)
            self._ckpt_epoch = meta["epoch"]
            self._ckpt_tick = self._tick
            self._records_since_ckpt = 0
        finally:
            self._in_checkpoint = False

    def _config_meta(self) -> dict[str, Any]:
        return {
            "xi": codec.encode_fraction(
                None if self._xi is None else Fraction(self._xi)
            ),
            "n_workers": self._n_workers,
            "n_shards": self._n_shards,
            "batch_size": self._batch_size,
            "event_budget": self._event_budget,
            "auto_retire_after": self._auto_retire_after,
            "compact_threshold": self._compact_threshold,
            "faulty": tuple(self._faulty),
            "drop_faulty": self._drop_faulty,
            "kernel": self._kernel,
            "backend": self._backend_kind,
            "wire_batch": self.wire_batch,
            "inbox_capacity": self._inbox_capacity,
            "rebalance": self.rebalance,
            "monitor_specs": codec.encode_specs(self._monitor_specs),
            "checkpoint_every": self._durability.checkpoint_every,
            "fsync": self._durability.fsync,
            "max_recoveries": self._durability.max_recoveries,
        }

    @classmethod
    def restore(
        cls,
        path: str | os.PathLike,
        *,
        backend: str | Any | None = None,
        start_method: str | None = None,
        on_violation: Callable[[TraceId, CycleClassification], None]
        | None = None,
    ) -> "ParallelFleet":
        """Rebuild a fleet from its durability directory after a full
        process restart.

        Workers are respawned with the committed placement, handed
        their checkpoint snapshots, and replayed the journals'
        contiguous tick prefix; per-trace worst ratios, degraded flags
        and violating sets are bit-identical to the state the journals
        cover.  The producer resumes from ``fleet.ingested_records``
        (records past the contiguous journal frontier were never made
        durable and must be re-fed).

        ``monitor_factory`` fleets cannot restore (a callable is not in
        the metadata); everything declarative -- including
        ``monitor_specs`` -- round-trips.
        """
        store = DurableStore(path)
        loaded = store.load()
        if loaded is None:
            raise FileNotFoundError(
                f"no committed fleet checkpoint under {path}"
            )
        meta, snapshots = loaded
        cfg = meta["config"]
        if backend is None:
            backend = cfg["backend"]
            if backend == "custom":
                raise ValueError(
                    "this fleet ran on a custom backend instance; pass "
                    "backend=... to restore()"
                )
        durability = Durability(
            root=path,
            checkpoint_every=cfg["checkpoint_every"],
            fsync=cfg["fsync"],
            max_recoveries=cfg["max_recoveries"],
        )
        fleet = cls(
            codec.decode_fraction(cfg["xi"]),
            n_workers=cfg["n_workers"],
            n_shards=cfg["n_shards"],
            batch_size=cfg["batch_size"],
            event_budget=cfg["event_budget"],
            auto_retire_after=cfg["auto_retire_after"],
            compact_threshold=cfg["compact_threshold"],
            faulty=frozenset(cfg["faulty"]),
            drop_faulty=cfg["drop_faulty"],
            kernel=cfg.get("kernel"),
            backend=backend,
            start_method=start_method,
            wire_batch=cfg["wire_batch"],
            inbox_capacity=cfg["inbox_capacity"],
            rebalance=cfg["rebalance"],
            monitor_specs=codec.decode_specs(cfg["monitor_specs"]),
            durability=durability,
            on_violation=on_violation,
            _restore=(meta, snapshots),
        )
        fleet._finish_restore(snapshots)
        return fleet

    def _finish_restore(self, snapshots: dict[int, tuple]) -> None:
        self._snap_cache = dict(snapshots)
        # Post every snapshot before collecting any ack: each worker
        # decodes its frame concurrently instead of one at a time, and
        # the replay batches below queue up behind the restore in the
        # same FIFO inbox, so ordering needs no round trip.
        acks: dict[int, int] = {}
        for worker_id, frame in snapshots.items():
            if worker_id in self._dead:
                continue
            acks[worker_id] = self._post(worker_id, ("restore", frame))
        # Per-worker journals flush at different moments, so only the
        # contiguous tick prefix of their union is a stream prefix the
        # restored fleet can honestly claim.
        frames: list[tuple] = []
        for worker_id in range(self.n_workers):
            frames.extend(
                self._durable.wal_frames(worker_id, self._ckpt_tick)
            )
        prefix, last_tick = contiguous_prefix(frames, self._ckpt_tick)
        by_shard: dict[int, list[tuple]] = {}
        for tick, shard, trace_id, wire in prefix:
            by_shard.setdefault(shard, []).append((tick, trace_id, wire))
        for shard in sorted(by_shard):
            worker_id = self._placement[shard]
            if worker_id in self._dead:
                continue
            self._handles[worker_id].put(("ingest", shard, by_shard[shard]))
        for worker_id, req_id in acks.items():
            self._collect(worker_id, req_id)
        self._tick = last_tick
        self._ingested = last_tick
        # Normalize the journals to the claimed prefix: frames beyond
        # the contiguous frontier carry ticks the resumed producer will
        # legitimately reissue, so they must not survive on disk.
        by_worker: dict[int, list[tuple]] = {}
        for frame in prefix:
            by_worker.setdefault(self._placement[frame[1]], []).append(
                frame
            )
        for worker_id in range(self.n_workers):
            write_frames(
                self._durable.wal_path(worker_id),
                by_worker.get(worker_id, []),
            )
        # One report barrier: syncs the replay (fence-by-FIFO), fires
        # re-detected post-checkpoint violations, and refreshes the
        # crash-accounting baselines.
        replies = self._barrier("report")
        self._last_report.update(replies)
        for worker_id, reply in replies.items():
            self._shipped[worker_id] = sum(
                codec.decode_stats(row).records for row in reply[0]
            )

    # ------------------------------------------------------------------
    # placement: live migration and skew rebalancing
    # ------------------------------------------------------------------

    def migrate_shard(self, shard_index: int, dest: int) -> None:
        """Move one live shard -- open traces, retired summaries,
        counters -- to worker ``dest``.

        Protocol: ship the shard's buffered records, export on the
        source (the request doubles as a fence behind the shipped
        batch), import on the destination, repoint the placement
        table.  Routing of *traces to shards* is untouched, so reported
        ratios cannot change; under durability the move commits a
        checkpoint, keeping journals and snapshots
        placement-consistent.
        """
        self._require_running()
        if shard_index not in self._placement:
            raise ValueError(f"unknown shard {shard_index}")
        if not 0 <= dest < self.n_workers:
            raise ValueError(f"unknown worker {dest}")
        src = self._placement[shard_index]
        if src == dest:
            return
        if len(self.shards_of_worker(src)) <= 1:
            raise ValueError(
                f"migrating shard {shard_index} would leave worker "
                f"{src} shardless"
            )
        for worker_id in (src, dest):
            if worker_id in self._dead and not self._try_recover(worker_id):
                raise self._crash_error(worker_id)
        self._ship(shard_index)
        frame = self._request(src, ("export_shard", shard_index))
        self._request(dest, ("import_shard", frame))
        self._placement[shard_index] = dest
        if self._durable is not None:
            self._checkpoint()

    def rebalance_placement(
        self, threshold: float = 2.0
    ) -> list[tuple[int, int, int]]:
        """Unpin hash-skewed placements: migrate the heaviest shards
        off every worker whose live-event share exceeds ``threshold``
        times the mean, onto the lightest workers.

        A skewed trace-id population can land most live events on one
        worker forever -- budget-share rebalancing only moves *budget*
        toward the hot worker, never load off it.  Returns the moves
        performed as ``(shard, source_worker, dest_worker)`` tuples
        (empty when nothing exceeded the threshold).
        """
        self._require_running()
        if threshold <= 1:
            raise ValueError("threshold must exceed 1")
        replies = self._barrier("report")
        self._last_report.update(replies)
        shard_live: dict[int, int] = {}
        for reply in replies.values():
            for row in reply[0]:
                stats = codec.decode_stats(row)
                shard_live[stats.shard] = stats.live_events
        alive = self._alive_workers()
        if len(alive) < 2:
            return []
        loads = {
            w: sum(
                shard_live.get(s, 0) for s in self.shards_of_worker(w)
            )
            for w in alive
        }
        mean = sum(loads.values()) / len(alive)
        if mean <= 0:
            return []
        moves: list[tuple[int, int, int]] = []
        for src in sorted(loads, key=lambda w: loads[w], reverse=True):
            while (
                loads[src] > threshold * mean
                and len(self.shards_of_worker(src)) > 1
            ):
                shard = max(
                    self.shards_of_worker(src),
                    key=lambda s: shard_live.get(s, 0),
                )
                dest = min(
                    (w for w in alive if w != src), key=lambda w: loads[w]
                )
                weight = shard_live.get(shard, 0)
                if loads[dest] + weight >= loads[src]:
                    break  # the move would only relocate the skew
                self.migrate_shard(shard, dest)
                loads[src] -= weight
                loads[dest] += weight
                moves.append((shard, src, dest))
        return moves

    # ------------------------------------------------------------------
    # the serial surface
    # ------------------------------------------------------------------

    def flush(self, trace_id: TraceId | None = None) -> None:
        """Absorb pending records (of one trace, or of every trace).

        A full flush is a sync barrier: violation callbacks fire here,
        in the deterministic merged order."""
        self._require_running()
        if trace_id is None:
            self._barrier("flush")
            return
        shard = self.shard_of(trace_id)
        self._ship(shard)
        self._request(
            self.worker_of(shard), ("flush_trace", shard, trace_id)
        )

    def close(self, trace_id: TraceId | None = None) -> TraceSummary | None:
        """Retire one finished trace -- or, with no argument, the whole
        fleet (an alias for :meth:`shutdown`, the context-manager exit
        path; idempotent, and ``ingest`` afterwards raises a clear
        ``RuntimeError`` instead of a backend-specific crash)."""
        if trace_id is None:
            self.shutdown()
            return None
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        wire = self._request(
            self.worker_of(shard), ("close", shard, trace_id)
        )
        # A closed trace usually never returns; drop its routing memo
        # entry (recomputed cheaply if it reopens).
        self._route.pop(trace_id, None)
        return codec.decode_summary(wire)

    def worst_ratio(self, trace_id: TraceId) -> Fraction | None:
        """The trace's exact running worst relevant ratio (its pending
        records shipped and flushed first)."""
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        wire = self._request(
            self.worker_of(shard), ("ratio", shard, trace_id)
        )
        return codec.decode_fraction(wire)

    def is_degraded(self, trace_id: TraceId) -> bool:
        self._require_running()
        shard = self.shard_of(trace_id)
        self._ship(shard)
        return self._request(
            self.worker_of(shard), ("degraded", shard, trace_id)
        )

    def _all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        self._require_running()
        replies = self._barrier("ratios")
        out: list[tuple[TraceId, Fraction | None]] = []
        for worker_id in sorted(replies):
            out.extend(
                (trace_id, codec.decode_fraction(wire))
                for trace_id, wire in replies[worker_id]
            )
        return out

    def all_ratios(self) -> list[tuple[TraceId, Fraction | None]]:
        """(trace id, worst ratio) for every known trace, merged across
        workers (a sync barrier; the serial fleet's ``all_ratios``)."""
        return self._all_ratios()

    def worst_ratio_histogram(self) -> dict[Fraction | None, int]:
        return ratio_histogram(self._all_ratios())

    def top_k_riskiest(
        self, k: int
    ) -> list[tuple[TraceId, Fraction | None]]:
        return top_k_riskiest(self._all_ratios(), k)

    def violating_traces(self) -> tuple[TraceId, ...]:
        """Ids of violating traces in the deterministic merged order
        (ascending trigger tick, trace id as tie-break)."""
        self._require_running()
        self._barrier("flush")
        return self._violating_ids()

    def _violating_ids(self) -> tuple[TraceId, ...]:
        ordered = sorted(
            self._fired_notices, key=lambda n: (n[0], str(n[1]))
        )
        return tuple(dict.fromkeys(trace_id for _t, trace_id in ordered))

    # ------------------------------------------------------------------
    # the push-based delta surface (see repro.runtime.net.deltas)
    # ------------------------------------------------------------------

    def drain_ratio_updates(self) -> dict[TraceId, Fraction | None]:
        """Worst-ratio changes accumulated since the last drain,
        coalesced last-wins per trace.

        Workers piggyback a row on every outbound message whenever a
        trace's merged worst ratio grows (or a trace opens), so this is
        a *push* feed: no barrier, no full scan -- the dispatcher only
        reports what already arrived.  Values are exact and monotone
        per trace; a consumer folding them into a map converges on
        :meth:`worst_ratio`'s answers for every trace after a final
        :meth:`flush`.  Draining transfers ownership: each update is
        returned once."""
        if not self._ratio_updates:
            return {}
        out = {
            trace_id: codec.decode_fraction(wire)
            for trace_id, wire in self._ratio_updates.items()
        }
        self._ratio_updates.clear()
        return out

    def violation_feed(self) -> tuple[tuple[int, TraceId], ...]:
        """Every violation known so far -- fired *and* still pending --
        as ``(tick, trace_id)`` rows in the deterministic merged order.

        Unlike :meth:`violating_traces` this is barrier-free (pending
        notices arrive unsolicited during ingest), so a delta publisher
        can diff it incrementally without collapsing wire batching."""
        rows = list(self._fired_notices)
        rows.extend((t, tid) for t, tid, _w in self._pending_notices)
        return tuple(
            dict.fromkeys(sorted(rows, key=lambda n: (n[0], str(n[1]))))
        )

    def report(self) -> FleetReport:
        """A merged :class:`FleetReport` (a sync barrier).

        Crashed workers contribute their last-synced statistics and
        their shards are listed in ``crashed_shards``.
        """
        self._require_running()
        replies = self._barrier("report")
        self._last_report.update(replies)
        stats: list[ShardStats] = []
        open_traces = retired = degraded = overruns = 0
        for worker_id in sorted(self._last_report):
            wire_stats, w_open, w_retired, w_degraded, w_overruns = (
                self._last_report[worker_id]
            )
            stats.extend(codec.decode_stats(row) for row in wire_stats)
            open_traces += w_open
            retired += w_retired
            degraded += w_degraded
            overruns += w_overruns
        stats.sort(key=lambda s: s.shard)
        return FleetReport(
            xi=None if self.xi is None else Fraction(self.xi),
            n_shards=self.n_shards,
            batch_size=self.batch_size,
            event_budget=self.event_budget,
            open_traces=open_traces,
            retired_traces=retired,
            records=sum(s.records for s in stats),
            flushes=sum(s.flushes for s in stats),
            oracle_calls=sum(s.oracle_calls for s in stats),
            live_events=sum(s.live_events for s in stats),
            peak_live_events=self._peak,
            tombstoned_events=sum(s.tombstoned_events for s in stats),
            evictions=sum(s.evictions for s in stats),
            summary_compactions=sum(s.summary_compactions for s in stats),
            summary_edges=sum(s.summary_edges for s in stats),
            auto_retired=sum(s.auto_retired for s in stats),
            budget_overruns=overruns,
            degraded_traces=degraded,
            violating_traces=self._violating_ids(),
            shards=tuple(stats),
            auto_compactions=sum(s.auto_compactions for s in stats),
            crashed_shards=self.crashed_shards(),
        )

    def _counters(self) -> tuple[int, int, int]:
        """(live events, open traces, retired traces) across workers.

        A pure counter read -- no buffer shipping, no worker flushes,
        no callback firing, no rebalancing -- so polling these
        properties inside an ingest loop costs one round trip per
        worker and cannot collapse wire batching (the serial
        properties are pure reads too).  Counts therefore reflect
        *absorbed* records; batches still queued or buffered are not
        yet included.
        """
        self._require_running()
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(worker_id, ("counters",))
            except WorkerCrashed:
                continue
        live = opened = retired = 0
        for worker_id, req_id in posted.items():
            try:
                w_live, w_open, w_retired = self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
            live += w_live
            opened += w_open
            retired += w_retired
        return live, opened, retired

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _fold_stalls(self) -> None:
        """Fold per-handle backpressure deltas into dispatcher counters.

        Handles accumulate plain ints (always on, slow path only); the
        registry sees them as deltas since the last fold, so a handle
        replaced by recovery (counters reset to zero, ``_stall_folded``
        reset alongside) never under- or double-counts."""
        obs = self._obs
        if obs is None:
            return
        for worker_id, handle in enumerate(self._handles):
            seen_count, seen_ns = self._stall_folded.get(worker_id, (0, 0))
            d_count = handle.stall_count - seen_count
            d_ns = handle.stall_ns - seen_ns
            if d_count > 0 or d_ns > 0:
                self._stall_folded[worker_id] = (
                    handle.stall_count,
                    handle.stall_ns,
                )
                if d_count > 0:
                    obs.ship_stalls.inc(d_count)
                if d_ns > 0:
                    obs.stall_ns.inc(d_ns)
        obs.queue_depth.set(
            sum(
                handle.depth()
                for worker_id, handle in enumerate(self._handles)
                if worker_id not in self._dead
            )
        )

    def metrics_rows(self) -> tuple[tuple, ...]:
        """Merged metric rows: every worker's registry plus the
        dispatcher's own, as plain wire tuples.

        Crash-tolerant the same way :meth:`report` is: each alive
        worker is polled (a pure counter read, no flushes or barriers)
        and its rows cached; a crashed worker contributes its
        last-synced rows.  Empty when telemetry is disabled."""
        if self._metrics is None:
            return ()
        self._fold_stalls()
        if not self._stopped:
            posted: dict[int, int] = {}
            for worker_id in self._alive_workers():
                try:
                    posted[worker_id] = self._post(worker_id, ("metrics",))
                except WorkerCrashed:
                    continue
            for worker_id, req_id in posted.items():
                try:
                    wire = self._collect(worker_id, req_id)
                except WorkerCrashed:
                    continue
                self._last_metrics[worker_id] = codec.decode_metrics_rows(
                    wire
                )
        row_sets = [
            self._last_metrics[worker_id]
            for worker_id in sorted(self._last_metrics)
        ]
        row_sets.append(self._metrics.to_rows())
        return _obs_metrics.merge_row_sets(row_sets)

    def metrics_snapshot(self, *, deterministic_only: bool = False) -> dict:
        """The merged fleet metrics as a JSON-able dict (see
        :meth:`repro.obs.metrics.MetricsRegistry.to_json`); with
        ``deterministic_only`` restricted to the cross-backend
        bit-identical subset."""
        return _obs_metrics.rows_to_json(
            self.metrics_rows(), deterministic_only=deterministic_only
        )

    def render_prometheus(self) -> str:
        """The merged fleet metrics in Prometheus text exposition
        format (empty string when telemetry is disabled)."""
        registry = MetricsRegistry()
        registry.merge_rows(self.metrics_rows())
        return registry.render_prometheus()

    @property
    def live_events(self) -> int:
        """Total live digraph events across workers (absorbed records;
        see :meth:`_counters` for the read semantics)."""
        return self._counters()[0]

    @property
    def open_traces(self) -> int:
        return self._counters()[1]

    @property
    def retired_traces(self) -> int:
        return self._counters()[2]

    def __len__(self) -> int:
        _live, opened, retired = self._counters()
        return opened + retired

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Graceful drain: flush (a final barrier), stop workers, join.

        Idempotent.  The closing flush barrier runs *before* the fleet
        is marked stopped, so the last violation callbacks fire while
        re-entering the fleet is still legal (the reentrancy the serial
        fleet documents); the stop round after it cannot produce new
        violations (everything was just absorbed and nothing ingests in
        between).  Crashed workers are skipped -- their shards were
        already surfaced."""
        if self._stopped:
            return
        if self._durable is not None:
            # A final checkpoint: restore() after a clean shutdown
            # resumes from the complete state, with empty journals.
            self._checkpoint()
        self._barrier("flush")
        self._stopped = True
        posted: dict[int, int] = {}
        for worker_id in self._alive_workers():
            try:
                posted[worker_id] = self._post(worker_id, ("stop",))
            except WorkerCrashed:
                continue
        for worker_id, req_id in posted.items():
            try:
                self._collect(worker_id, req_id)
            except WorkerCrashed:
                continue
        self._note_peak()
        for worker_id in self._alive_workers():
            self._handles[worker_id].join()
        # Stragglers should not exist (see above); fired after the
        # joins so a misbehaving callback can never leave workers
        # unjoined.
        self._fire_pending()

    def __enter__(self) -> "ParallelFleet":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.shutdown()

"""Execution backends: where worker shard groups actually run.

A backend's single job is to put :func:`repro.runtime.worker.worker_main`
somewhere with a bounded inbox and an outbox, and to answer "is that
worker still alive?".  Two implementations:

* :class:`ProcessBackend` -- one OS process per worker
  (``multiprocessing``; ``fork`` where available, ``spawn`` otherwise).
  The real-parallelism backend: workers bypass the GIL, so a fleet's
  oracle work scales with cores.
* :class:`ThreadBackend` -- one daemon thread per worker with plain
  ``queue.Queue`` pipes.  No parallel speedup (the GIL serializes the
  oracle), but identical protocol semantics with zero process-spawn
  overhead and in-process tracebacks: the debugging and
  low-overhead-correctness backend, and the only one that accepts
  non-picklable configuration (``monitor_factory``).

Both expose the same :class:`WorkerHandle` surface; the dispatcher in
:mod:`repro.runtime.parallel` never branches on the backend.  Bounded
inboxes are the backpressure mechanism: a ``put`` into a full inbox
blocks (in timeout slices probing liveness), so a dispatcher can never
run unboundedly ahead of a slow worker, and a dead worker turns the
block into :class:`WorkerCrashed` instead of a hang.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.runtime.worker import worker_main

__all__ = [
    "ProcessBackend",
    "ThreadBackend",
    "WorkerCrashed",
    "WorkerHandle",
]

logger = logging.getLogger(__name__)

# Seconds between liveness probes while blocked on a full inbox or an
# empty outbox; purely an upper bound on crash-detection latency.
_PROBE_INTERVAL = 0.05


class WorkerCrashed(RuntimeError):
    """A worker died (crash message received, or its process/thread is
    gone); the message names the worker and -- whenever the worker
    managed to send one -- carries the original traceback, both in the
    message text and as :attr:`worker_traceback`."""

    def __init__(
        self,
        message: str,
        worker_id: int | None = None,
        worker_traceback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.worker_traceback = worker_traceback


class WorkerHandle:
    """One live worker: its queues plus backend-specific liveness."""

    def __init__(
        self,
        worker_id: int,
        inbox: Any,
        outbox: Any,
        is_alive: Callable[[], bool],
        join: Callable[[float], None],
    ) -> None:
        self.worker_id = worker_id
        self.inbox = inbox
        self.outbox = outbox
        self._is_alive = is_alive
        self._join = join
        # Messages salvaged from the outbox while building a crash
        # diagnosis; served to the dispatcher ahead of the queue so the
        # salvage never steals replies or notices.
        self._salvaged: deque[tuple] = deque()
        # The worker's crash traceback, once seen (crash frames are
        # recorded on every read path, then *also* delivered).
        self.crash_traceback: str | None = None
        self._crash_logged = False
        # Backpressure accounting, always on (the Full branch is the
        # slow path already): ship attempts that blocked, and for how
        # long.  The dispatcher folds these into its metrics registry.
        self.stall_count = 0
        self.stall_ns = 0

    def alive(self) -> bool:
        return self._is_alive()

    def depth(self) -> int:
        """Best-effort inbox depth (0 where the platform's queue cannot
        say, e.g. ``qsize`` on macOS)."""
        try:
            return self.inbox.qsize()
        except (NotImplementedError, OSError):
            return 0

    def _note(self, message: tuple) -> tuple:
        if message and message[0] == "crash":
            self.crash_traceback = message[2]
        return message

    def _crashed(self, context: str) -> WorkerCrashed:
        """Build the crash exception, always with the worker's traceback
        when one exists: drain whatever the outbox holds into the
        salvage buffer (crash frames are recorded *and* kept for the
        dispatcher's own accounting), log once at ERROR, and attach.
        """
        while True:
            try:
                message = self.outbox.get_nowait()
            except queue.Empty:
                break
            self._salvaged.append(self._note(message))
        if self.crash_traceback is None and not self.alive():
            # One short grace read: the crash frame may still be in a
            # process queue's feeder thread (the _grace_read lag).
            try:
                self._salvaged.append(
                    self._note(self.outbox.get(timeout=0.25))
                )
            except queue.Empty:
                pass
        detail = self.crash_traceback
        message = f"worker {self.worker_id} {context}"
        if detail is not None:
            message = f"{message}\nworker traceback:\n{detail}"
        if not self._crash_logged:
            self._crash_logged = True
            logger.error(
                "worker %d crashed (%s)%s",
                self.worker_id,
                context,
                "" if detail is None else f":\n{detail}",
            )
        return WorkerCrashed(
            message, worker_id=self.worker_id, worker_traceback=detail
        )

    def put(self, message: tuple, timeout: float | None = None) -> None:
        """Enqueue with backpressure: block while the inbox is full,
        probing liveness so a dead worker raises instead of hanging.

        ``timeout`` is honored against the wall clock: the deadline is a
        ``time.monotonic()`` instant, not a count of probe slices, so
        scheduler jitter (a probe sleeping longer than its nominal
        interval) cannot stretch the effective timeout.  A dead worker
        always raises :class:`WorkerCrashed`, even at an expired
        deadline -- the crash is the truer diagnosis.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        stalled_at: int | None = None
        try:
            while True:
                wait = _PROBE_INTERVAL
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        if not self.alive():
                            raise self._crashed(
                                "died with a full inbox"
                            ) from None
                        raise TimeoutError(
                            f"worker {self.worker_id} inbox full for "
                            f"{timeout:.1f}s"
                        ) from None
                    wait = min(wait, remaining)
                try:
                    self.inbox.put(message, timeout=wait)
                    return
                except queue.Full:
                    if stalled_at is None:
                        stalled_at = time.perf_counter_ns()
                        self.stall_count += 1
                    if not self.alive():
                        raise self._crashed(
                            "died with a full inbox"
                        ) from None
        finally:
            if stalled_at is not None:
                self.stall_ns += time.perf_counter_ns() - stalled_at

    def get(self, timeout: float | None = None) -> tuple:
        """Dequeue one outbound message, probing liveness while empty.

        Same monotonic-deadline semantics as :meth:`put`; on a dead
        worker one final grace read drains a reply that raced the exit.
        """
        if self._salvaged:
            return self._salvaged.popleft()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = _PROBE_INTERVAL
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if not self.alive():
                        return self._grace_read()
                    raise TimeoutError(
                        f"worker {self.worker_id} silent for {timeout:.1f}s"
                    ) from None
                wait = min(wait, remaining)
            try:
                return self._note(self.outbox.get(timeout=wait))
            except queue.Empty:
                if not self.alive():
                    return self._grace_read()

    def _grace_read(self) -> tuple:
        """One final read on a dead worker's outbox: it may have emitted
        its crash notice and exited between probes (a process queue's
        feeder thread can lag the exit)."""
        try:
            return self._note(self.outbox.get(timeout=0.25))
        except queue.Empty:
            raise self._crashed("died without replying") from None

    def get_nowait(self) -> tuple | None:
        """Opportunistic drain: one message if immediately available."""
        if self._salvaged:
            return self._salvaged.popleft()
        try:
            return self._note(self.outbox.get_nowait())
        except queue.Empty:
            return None

    def join(self, timeout: float = 5.0) -> None:
        self._join(timeout)


class ProcessBackend:
    """Workers as OS processes (the parallel-throughput backend).

    Args:
        start_method: ``multiprocessing`` start method; default prefers
            ``fork`` (cheap, inherits the imported library) and falls
            back to the platform default (``spawn`` on Windows/macOS,
            which requires picklable configuration -- the wire codec
            keeps everything else plain already).
    """

    supports_callables = False

    def __init__(self, start_method: str | None = None) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._processes: list[multiprocessing.process.BaseProcess] = []

    def spawn(
        self,
        worker_id: int,
        shard_indices: Iterable[int],
        config: dict[str, Any],
        inbox_capacity: int,
    ) -> WorkerHandle:
        inbox = self._ctx.Queue(maxsize=inbox_capacity)
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, tuple(shard_indices), config, inbox, outbox),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        process.start()
        self._processes.append(process)

        def join(timeout: float) -> None:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(1.0)

        return WorkerHandle(
            worker_id, inbox, outbox, process.is_alive, join
        )


class ThreadBackend:
    """Workers as daemon threads (debug / low-overhead correctness).

    Shares the process with the dispatcher: no serialization actually
    copies (queues pass tuples by reference -- the codec still runs, so
    the wire format is exercised identically), tracebacks surface
    in-process, and non-picklable configuration such as
    ``monitor_factory`` works.  The GIL serializes oracle work, so use
    :class:`ProcessBackend` for throughput.

    Per-trace configuration no longer forces this backend: declarative
    :class:`~repro.runtime.MonitorSpec` rows (``monitor_specs=``) are
    picklable, cross process boundaries, and survive
    ``ParallelFleet.restore`` -- reserve ``monitor_factory`` for
    construction that is genuinely dynamic.
    """

    supports_callables = True

    def __init__(self) -> None:
        self._threads: list[threading.Thread] = []

    def spawn(
        self,
        worker_id: int,
        shard_indices: Iterable[int],
        config: dict[str, Any],
        inbox_capacity: int,
    ) -> WorkerHandle:
        inbox: queue.Queue = queue.Queue(maxsize=inbox_capacity)
        outbox: queue.Queue = queue.Queue()
        thread = threading.Thread(
            target=worker_main,
            args=(worker_id, tuple(shard_indices), config, inbox, outbox),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        thread.start()
        self._threads.append(thread)
        return WorkerHandle(
            worker_id, inbox, outbox, thread.is_alive, thread.join
        )

"""The wire layer: compact, deterministic encodings for fleet traffic.

Everything that crosses a worker boundary -- record batches inbound,
ratios, summaries, statistics and violation notices outbound -- passes
through this module.  The encodings are *plain nested tuples of
primitives* (ints, floats, strings, ``None``, and opaque payloads),
for three reasons:

* **Transport independence.**  Plain tuples pickle at C speed over a
  ``multiprocessing`` pipe, cross a thread-backend queue by reference,
  and could be framed onto any byte transport -- the runtime's
  backends share one codec.
* **No rich types on the wire.**  Library classes evolve; the wire
  format is this module's tuples alone, so a worker never unpickles an
  arbitrary class graph, and pickling quirks of deep structures (e.g.
  the structurally shared walks inside
  :class:`~repro.core.synchrony.SummaryEdge`) stay out of the
  protocol entirely -- witnesses are encoded as flat step lists.
* **Determinism.**  Encoding is a pure function of the value: equal
  inputs produce equal (and comparably ordered) encodings, which the
  dispatcher's deterministic violation merge relies on.

Exact rationals survive the trip: a :class:`~fractions.Fraction` is
encoded as its ``(numerator, denominator)`` pair, so the bit-identity
contract of the parallel fleet is decided by graph content, never by
serialization.  ``payload`` fields are passed through opaquely (they
must then be transportable by the chosen backend; the bundled
workload generators use ``None``).

Round-tripping is total on the types it names: ``decode_x(encode_x(v))``
reconstructs an equal value, property-tested over randomized workload
streams (metadata-free ones included) in ``tests/runtime/test_codec.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.cycles import Cycle, CycleClassification, Step
from repro.core.events import Event
from repro.core.execution_graph import LocalEdge, MessageEdge
from repro.runtime.shard import ShardStats, TraceId, TraceSummary
from repro.sim.trace import ReceiveRecord, SendRecord

__all__ = [
    "decode_fraction",
    "decode_notice",
    "decode_record",
    "decode_records",
    "decode_stats",
    "decode_summary",
    "decode_witness",
    "encode_fraction",
    "encode_notice",
    "encode_record",
    "encode_records",
    "encode_stats",
    "encode_summary",
    "encode_witness",
]


# ----------------------------------------------------------------------
# fractions
# ----------------------------------------------------------------------


def encode_fraction(value: Fraction | None) -> tuple[int, int] | None:
    """``Fraction`` -> ``(numerator, denominator)`` (``None`` passes)."""
    if value is None:
        return None
    return (value.numerator, value.denominator)


def decode_fraction(wire: tuple[int, int] | None) -> Fraction | None:
    if wire is None:
        return None
    return Fraction(wire[0], wire[1])


# ----------------------------------------------------------------------
# receive records
# ----------------------------------------------------------------------


def encode_record(record: ReceiveRecord) -> tuple:
    """One receive record as a flat tuple.

    Field order: ``(process, index, time, sender, send_process,
    send_index, send_time, payload, processed, sends)`` with ``sends``
    a tuple of ``(dest, payload, delay, deliver_time)`` rows.  Wake-ups
    carry ``None`` in the sender/send fields, exactly as the record
    does.
    """
    event = record.event
    send_event = record.send_event
    sends = record.sends
    return (
        event.process,
        event.index,
        record.time,
        record.sender,
        None if send_event is None else send_event.process,
        None if send_event is None else send_event.index,
        record.send_time,
        record.payload,
        record.processed,
        tuple(
            (send.dest, send.payload, send.delay, send.deliver_time)
            for send in sends
        )
        if sends
        else (),
    )


def decode_record(wire: tuple) -> ReceiveRecord:
    (
        process,
        index,
        time,
        sender,
        send_process,
        send_index,
        send_time,
        payload,
        processed,
        sends,
    ) = wire
    # Trusted-path construction throughout: the wire only ever carries
    # values our own encoder read out of live records, and this runs
    # once per record on every worker -- the frozen dataclasses'
    # checked ``__init__``s (each field crossing object.__setattr__,
    # plus Event.__post_init__ validation) are the dominant cost of a
    # naive decode, so instances are built via ``__new__`` + direct
    # ``__dict__`` stores.  Equality/hash semantics are unchanged
    # (both derive from the fields).
    event = Event.__new__(Event)
    event_fields = event.__dict__
    event_fields["process"] = process
    event_fields["index"] = index
    if send_process is None:
        send_event = None
    else:
        send_event = Event.__new__(Event)
        send_fields = send_event.__dict__
        send_fields["process"] = send_process
        send_fields["index"] = send_index
    if sends:
        decoded_sends = []
        for d, p, dl, dt in sends:
            send = SendRecord.__new__(SendRecord)
            row = send.__dict__
            row["dest"] = d
            row["payload"] = p
            row["delay"] = dl
            row["deliver_time"] = dt
            decoded_sends.append(send)
        sends = tuple(decoded_sends)
    else:
        sends = ()
    record = ReceiveRecord.__new__(ReceiveRecord)
    fields = record.__dict__
    fields["event"] = event
    fields["time"] = time
    fields["sender"] = sender
    fields["send_event"] = send_event
    fields["send_time"] = send_time
    fields["payload"] = payload
    fields["processed"] = processed
    fields["sends"] = sends
    return record


def encode_records(
    batch: list[tuple[int, TraceId, ReceiveRecord]],
) -> list[tuple]:
    """A shard batch: ``(tick, trace_id, record)`` rows, records encoded."""
    return [
        (tick, trace_id, encode_record(record))
        for tick, trace_id, record in batch
    ]


def decode_records(
    wire: list[tuple],
) -> list[tuple[int, TraceId, ReceiveRecord]]:
    return [
        (tick, trace_id, decode_record(record))
        for tick, trace_id, record in wire
    ]


# ----------------------------------------------------------------------
# violation witnesses
# ----------------------------------------------------------------------


def encode_witness(witness: CycleClassification | None) -> tuple | None:
    """A witness cycle as ``(relevant, fwd, bwd, steps)``.

    Each step row is ``(is_message, src_process, src_index, dst_process,
    dst_index, direction)``.  Witness walks contain only genuine
    execution-graph steps (summary edges are expanded before a witness
    is ever produced -- see
    :meth:`~repro.core.synchrony.AdmissibilityChecker.violating_cycle`),
    so two edge kinds cover the wire format.
    """
    if witness is None:
        return None
    return (
        witness.relevant,
        witness.forward_messages,
        witness.backward_messages,
        tuple(
            (
                step.edge.is_message,
                step.edge.src.process,
                step.edge.src.index,
                step.edge.dst.process,
                step.edge.dst.index,
                step.direction,
            )
            for step in witness.cycle.steps
        ),
    )


def decode_witness(wire: tuple | None) -> CycleClassification | None:
    if wire is None:
        return None
    relevant, forward, backward, steps = wire
    decoded = []
    for is_message, sp, si, dp, di, direction in steps:
        edge_type = MessageEdge if is_message else LocalEdge
        decoded.append(
            Step(edge_type(Event(sp, si), Event(dp, di)), direction)
        )
    return CycleClassification(
        cycle=Cycle(tuple(decoded)),
        relevant=relevant,
        forward_messages=forward,
        backward_messages=backward,
    )


# ----------------------------------------------------------------------
# summaries, statistics, notices
# ----------------------------------------------------------------------


def encode_summary(summary: TraceSummary) -> tuple:
    return (
        summary.trace_id,
        encode_fraction(summary.worst_ratio),
        summary.n_records,
        summary.oracle_calls,
        encode_witness(summary.violation),
        summary.degraded,
    )


def decode_summary(wire: tuple) -> TraceSummary:
    trace_id, ratio, n_records, oracle_calls, violation, degraded = wire
    return TraceSummary(
        trace_id=trace_id,
        worst_ratio=decode_fraction(ratio),
        n_records=n_records,
        oracle_calls=oracle_calls,
        violation=decode_witness(violation),
        degraded=degraded,
    )


def encode_stats(stats: ShardStats) -> tuple:
    return (
        stats.shard,
        stats.open_traces,
        stats.retired_traces,
        stats.records,
        stats.flushes,
        stats.oracle_calls,
        stats.live_events,
        stats.tombstoned_events,
        stats.evictions,
        stats.summary_compactions,
        stats.summary_edges,
        stats.auto_retired,
        stats.auto_compactions,
    )


def decode_stats(wire: tuple) -> ShardStats:
    return ShardStats(*wire)


def encode_notice(
    tick: int, trace_id: TraceId, witness: CycleClassification
) -> tuple:
    """A violation notice: the trigger tick (the violating trace's last
    absorbed global ingest position -- the dispatcher's deterministic
    merge key), the trace id, and the encoded witness."""
    return (tick, trace_id, encode_witness(witness))


def decode_notice(wire: tuple) -> tuple[int, TraceId, CycleClassification]:
    tick, trace_id, witness = wire
    return (tick, trace_id, decode_witness(witness))

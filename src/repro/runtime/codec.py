"""The wire layer: compact, deterministic encodings for fleet traffic.

Everything that crosses a worker boundary -- record batches inbound,
ratios, summaries, statistics and violation notices outbound -- passes
through this module.  The encodings are *plain nested tuples of
primitives* (ints, floats, strings, ``None``, and opaque payloads),
for three reasons:

* **Transport independence.**  Plain tuples pickle at C speed over a
  ``multiprocessing`` pipe, cross a thread-backend queue by reference,
  and could be framed onto any byte transport -- the runtime's
  backends share one codec.
* **No rich types on the wire.**  Library classes evolve; the wire
  format is this module's tuples alone, so a worker never unpickles an
  arbitrary class graph, and pickling quirks of deep structures (e.g.
  the structurally shared walks inside
  :class:`~repro.core.synchrony.SummaryEdge`) stay out of the
  protocol entirely -- witnesses are encoded as flat step lists.
* **Determinism.**  Encoding is a pure function of the value: equal
  inputs produce equal (and comparably ordered) encodings, which the
  dispatcher's deterministic violation merge relies on.

Exact rationals survive the trip: a :class:`~fractions.Fraction` is
encoded as its ``(numerator, denominator)`` pair, so the bit-identity
contract of the parallel fleet is decided by graph content, never by
serialization.  ``payload`` fields are passed through opaquely (they
must then be transportable by the chosen backend; the bundled
workload generators use ``None``).

Round-tripping is total on the types it names: ``decode_x(encode_x(v))``
reconstructs an equal value, property-tested over randomized workload
streams (metadata-free ones included) in ``tests/runtime/test_codec.py``.

**Snapshot and WAL frames.**  The durability plane
(:mod:`repro.runtime.durable`) persists the same frames the migration
protocol ships between workers: a *trace-state frame* captures one open
trace (its live monitor as a pickle blob -- the one deliberately opaque
payload, justified by the PR 5 bit-identical-monitor-pickling property
-- plus the shard-side bookkeeping as plain tuples), a *shard image*
captures one :class:`~repro.runtime.shard.FleetShard` (trace frames,
retired summaries, lifetime counters), and a *group snapshot* captures
a whole :class:`~repro.runtime.shard.ShardGroup` (shard images plus the
group clock, violation log, and watermark).  Monitor callbacks never
enter a frame: they are stripped before pickling and re-wired by the
importing group, so frames stay transportable across processes and
restarts.  Frames carry a magic tag and a version so a store written by
one build fails loudly, not subtly, under another.
"""

from __future__ import annotations

import pickle
from fractions import Fraction
from typing import TYPE_CHECKING

from repro.core.cycles import Cycle, CycleClassification, Step
from repro.core.events import Event
from repro.core.execution_graph import LocalEdge, MessageEdge
from repro.runtime.shard import (
    FleetShard,
    MonitorSpec,
    ShardStats,
    TraceId,
    TraceState,
    TraceSummary,
)
from repro.sim.trace import ReceiveRecord, RecordColumns, SendRecord

if TYPE_CHECKING:
    from repro.analysis.online import OnlineAbcMonitor
    from repro.runtime.shard import ShardGroup

__all__ = [
    "GROUP_SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "decode_fraction",
    "decode_group_snapshot",
    "decode_monitor",
    "decode_notice",
    "decode_ratio_rows",
    "decode_record",
    "decode_records",
    "decode_records_columnar",
    "decode_shard_image",
    "decode_spec",
    "decode_specs",
    "decode_stats",
    "decode_summary",
    "decode_trace_state",
    "decode_witness",
    "encode_fraction",
    "encode_group_snapshot",
    "encode_monitor",
    "encode_notice",
    "encode_ratio_rows",
    "encode_record",
    "encode_records",
    "encode_shard_image",
    "encode_spec",
    "encode_specs",
    "encode_stats",
    "encode_summary",
    "encode_trace_state",
    "encode_witness",
]


# ----------------------------------------------------------------------
# fractions
# ----------------------------------------------------------------------


def encode_fraction(value: Fraction | None) -> tuple[int, int] | None:
    """``Fraction`` -> ``(numerator, denominator)`` (``None`` passes)."""
    if value is None:
        return None
    return (value.numerator, value.denominator)


def decode_fraction(wire: tuple[int, int] | None) -> Fraction | None:
    if wire is None:
        return None
    return Fraction(wire[0], wire[1])


# ----------------------------------------------------------------------
# receive records
# ----------------------------------------------------------------------


def encode_record(record: ReceiveRecord) -> tuple:
    """One receive record as a flat tuple.

    Field order: ``(process, index, time, sender, send_process,
    send_index, send_time, payload, processed, sends)`` with ``sends``
    a tuple of ``(dest, payload, delay, deliver_time)`` rows.  Wake-ups
    carry ``None`` in the sender/send fields, exactly as the record
    does.
    """
    event = record.event
    send_event = record.send_event
    sends = record.sends
    return (
        event.process,
        event.index,
        record.time,
        record.sender,
        None if send_event is None else send_event.process,
        None if send_event is None else send_event.index,
        record.send_time,
        record.payload,
        record.processed,
        tuple(
            (send.dest, send.payload, send.delay, send.deliver_time)
            for send in sends
        )
        if sends
        else (),
    )


def decode_record(wire: tuple) -> ReceiveRecord:
    (
        process,
        index,
        time,
        sender,
        send_process,
        send_index,
        send_time,
        payload,
        processed,
        sends,
    ) = wire
    # Trusted-path construction throughout: the wire only ever carries
    # values our own encoder read out of live records, and this runs
    # once per record on every worker -- the frozen dataclasses'
    # checked ``__init__``s (each field crossing object.__setattr__,
    # plus Event.__post_init__ validation) are the dominant cost of a
    # naive decode, so instances are built via ``__new__`` + direct
    # ``__dict__`` stores.  Equality/hash semantics are unchanged
    # (both derive from the fields).
    event = Event.__new__(Event)
    event_fields = event.__dict__
    event_fields["process"] = process
    event_fields["index"] = index
    if send_process is None:
        send_event = None
    else:
        send_event = Event.__new__(Event)
        send_fields = send_event.__dict__
        send_fields["process"] = send_process
        send_fields["index"] = send_index
    if sends:
        decoded_sends = []
        for d, p, dl, dt in sends:
            send = SendRecord.__new__(SendRecord)
            row = send.__dict__
            row["dest"] = d
            row["payload"] = p
            row["delay"] = dl
            row["deliver_time"] = dt
            decoded_sends.append(send)
        sends = tuple(decoded_sends)
    else:
        sends = ()
    record = ReceiveRecord.__new__(ReceiveRecord)
    fields = record.__dict__
    fields["event"] = event
    fields["time"] = time
    fields["sender"] = sender
    fields["send_event"] = send_event
    fields["send_time"] = send_time
    fields["payload"] = payload
    fields["processed"] = processed
    fields["sends"] = sends
    return record


def encode_records(
    batch: list[tuple[int, TraceId, ReceiveRecord]],
) -> list[tuple]:
    """A shard batch: ``(tick, trace_id, record)`` rows, records encoded."""
    return [
        (tick, trace_id, encode_record(record))
        for tick, trace_id, record in batch
    ]


def decode_records(
    wire: list[tuple],
) -> list[tuple[int, TraceId, ReceiveRecord]]:
    return [
        (tick, trace_id, decode_record(record))
        for tick, trace_id, record in wire
    ]


def decode_records_columnar(
    wire: list[tuple],
) -> tuple[tuple, tuple, RecordColumns]:
    """A shard batch decoded into parallel columns -- zero record objects.

    The columnar twin of :func:`decode_records` and the entry of the
    zero-object ingest path: the same ``(tick, trace_id, record)`` wire
    rows are transposed (two C-speed ``zip`` passes, no per-record
    Python loop body) into ``(ticks, trace_ids, columns)`` where
    ``columns`` is a :class:`~repro.sim.trace.RecordColumns` holding the
    ten record fields as parallel tuples -- exact ``(process, index)``
    pairs for sender events, untouched payloads (big-int Fractions
    survive exactly), and sends metadata as plain wire rows.

    The object-building :func:`decode_records` remains the reference
    decode (and the path degraded/reopened traces fall back to).
    Malformed frames -- ragged batch rows or record tuples whose arity
    is not the ten wire fields -- raise ``ValueError`` here, in the
    caller, rather than desynchronizing columns downstream.
    """
    if not wire:
        return ((), (), RecordColumns())
    try:
        ticks, trace_ids, records = zip(*wire, strict=True)
        field_cols = tuple(zip(*records, strict=True))
    except ValueError as exc:
        raise ValueError(f"ragged columnar batch: {exc}") from None
    if len(field_cols) != 10:
        raise ValueError(
            "ragged columnar batch: records carry "
            f"{len(field_cols)} fields, expected 10"
        )
    return (ticks, trace_ids, RecordColumns(*field_cols))


# ----------------------------------------------------------------------
# violation witnesses
# ----------------------------------------------------------------------


def encode_witness(witness: CycleClassification | None) -> tuple | None:
    """A witness cycle as ``(relevant, fwd, bwd, steps)``.

    Each step row is ``(is_message, src_process, src_index, dst_process,
    dst_index, direction)``.  Witness walks contain only genuine
    execution-graph steps (summary edges are expanded before a witness
    is ever produced -- see
    :meth:`~repro.core.synchrony.AdmissibilityChecker.violating_cycle`),
    so two edge kinds cover the wire format.
    """
    if witness is None:
        return None
    return (
        witness.relevant,
        witness.forward_messages,
        witness.backward_messages,
        tuple(
            (
                step.edge.is_message,
                step.edge.src.process,
                step.edge.src.index,
                step.edge.dst.process,
                step.edge.dst.index,
                step.direction,
            )
            for step in witness.cycle.steps
        ),
    )


def decode_witness(wire: tuple | None) -> CycleClassification | None:
    if wire is None:
        return None
    relevant, forward, backward, steps = wire
    decoded = []
    for is_message, sp, si, dp, di, direction in steps:
        edge_type = MessageEdge if is_message else LocalEdge
        decoded.append(
            Step(edge_type(Event(sp, si), Event(dp, di)), direction)
        )
    return CycleClassification(
        cycle=Cycle(tuple(decoded)),
        relevant=relevant,
        forward_messages=forward,
        backward_messages=backward,
    )


# ----------------------------------------------------------------------
# summaries, statistics, notices
# ----------------------------------------------------------------------


def encode_summary(summary: TraceSummary) -> tuple:
    return (
        summary.trace_id,
        encode_fraction(summary.worst_ratio),
        summary.n_records,
        summary.oracle_calls,
        encode_witness(summary.violation),
        summary.degraded,
    )


def decode_summary(wire: tuple) -> TraceSummary:
    trace_id, ratio, n_records, oracle_calls, violation, degraded = wire
    return TraceSummary(
        trace_id=trace_id,
        worst_ratio=decode_fraction(ratio),
        n_records=n_records,
        oracle_calls=oracle_calls,
        violation=decode_witness(violation),
        degraded=degraded,
    )


def encode_stats(stats: ShardStats) -> tuple:
    return (
        stats.shard,
        stats.open_traces,
        stats.retired_traces,
        stats.records,
        stats.flushes,
        stats.oracle_calls,
        stats.live_events,
        stats.tombstoned_events,
        stats.evictions,
        stats.summary_compactions,
        stats.summary_edges,
        stats.auto_retired,
        stats.auto_compactions,
    )


def decode_stats(wire: tuple) -> ShardStats:
    return ShardStats(*wire)


def encode_notice(
    tick: int, trace_id: TraceId, witness: CycleClassification
) -> tuple:
    """A violation notice: the trigger tick (the violating trace's last
    absorbed global ingest position -- the dispatcher's deterministic
    merge key), the trace id, and the encoded witness."""
    return (tick, trace_id, encode_witness(witness))


def decode_notice(wire: tuple) -> tuple[int, TraceId, CycleClassification]:
    tick, trace_id, witness = wire
    return (tick, trace_id, decode_witness(witness))


def encode_ratio_rows(
    updates: dict[TraceId, Fraction | None],
) -> tuple[tuple[TraceId, tuple[int, int] | None], ...]:
    """Worst-ratio update rows, coalesced last-wins per trace: the
    piggyback payload every worker message carries to feed push-based
    delta consumers (see :mod:`repro.runtime.net.deltas`)."""
    return tuple(
        (trace_id, encode_fraction(ratio))
        for trace_id, ratio in updates.items()
    )


def decode_ratio_rows(
    rows: tuple[tuple[TraceId, tuple[int, int] | None], ...],
) -> dict[TraceId, Fraction | None]:
    return {
        trace_id: decode_fraction(wire) for trace_id, wire in rows
    }


def encode_metrics_rows(rows: tuple[tuple, ...]) -> tuple[tuple, ...]:
    """Serialized telemetry rows (see
    :meth:`~repro.obs.metrics.MetricsRegistry.to_rows`) as a wire
    payload.  Rows are already plain tuples of ints/strings; encoding
    normalizes nested sequences to tuples so the frame is hashable and
    pickles canonically."""
    out = []
    for row in rows:
        kind, name, labels, deterministic, payload, *rest = row
        if kind == "histogram":
            bounds, counts, count, total = payload
            payload = (tuple(bounds), tuple(counts), count, total)
        out.append(
            (kind, name, tuple(tuple(pair) for pair in labels),
             deterministic, payload, *rest)
        )
    return tuple(out)


def decode_metrics_rows(wire: tuple[tuple, ...]) -> tuple[tuple, ...]:
    """Validate and return telemetry rows; tolerates trailing row
    extensions (``*rest``) from newer peers, like every other frame."""
    rows = []
    for row in wire:
        kind, name, labels, deterministic, payload, *rest = row
        rows.append((kind, name, labels, deterministic, payload, *rest))
    return tuple(rows)


# ----------------------------------------------------------------------
# monitor specs
# ----------------------------------------------------------------------


def encode_spec(spec: MonitorSpec) -> tuple:
    """One :class:`~repro.runtime.shard.MonitorSpec` as a plain tuple
    (``None`` fields mean "inherit the fleet default", as in the spec)."""
    return (
        encode_fraction(None if spec.xi is None else Fraction(spec.xi)),
        spec.compact_threshold,
        None if spec.faulty is None else tuple(spec.faulty),
        spec.drop_faulty,
        spec.kernel,
    )


def decode_spec(wire: tuple) -> MonitorSpec:
    # Pre-kernel frames are 4-tuples; tolerate them so old snapshots
    # restore (their specs simply inherit the restoring group's kernel).
    xi, compact_threshold, faulty, drop_faulty, *rest = wire
    return MonitorSpec(
        xi=decode_fraction(xi),
        compact_threshold=compact_threshold,
        faulty=None if faulty is None else frozenset(faulty),
        drop_faulty=drop_faulty,
        kernel=rest[0] if rest else None,
    )


def encode_specs(
    specs: MonitorSpec | dict[TraceId, MonitorSpec] | None,
) -> tuple | None:
    """A spec registry: either one fleet-wide default spec or a
    per-trace-id mapping (the wire shape of ``monitor_specs``)."""
    if specs is None:
        return None
    if isinstance(specs, MonitorSpec):
        return ("one", encode_spec(specs))
    return (
        "map",
        tuple(
            (trace_id, encode_spec(spec))
            for trace_id, spec in specs.items()
        ),
    )


def decode_specs(
    wire: tuple | None,
) -> MonitorSpec | dict[TraceId, MonitorSpec] | None:
    if wire is None:
        return None
    kind, payload = wire
    if kind == "one":
        return decode_spec(payload)
    return {trace_id: decode_spec(row) for trace_id, row in payload}


# ----------------------------------------------------------------------
# snapshot frames: monitors, trace states, shard images, group images
# ----------------------------------------------------------------------

GROUP_SNAPSHOT_MAGIC = "abc-group-snapshot"
SNAPSHOT_VERSION = 1


def encode_monitor(monitor: OnlineAbcMonitor) -> bytes:
    """A live monitor as a pickle blob, callbacks stripped.

    The monitor's ``on_violation`` is the owning group's bookkeeping
    closure (unpicklable by construction) and ``on_ratio_increase`` is
    caller-owned; both are transport concerns of the *receiving* side,
    which re-wires its own, so they are nulled around the dump and
    restored on the live object.  Everything else -- checker digraph,
    summary edges, tombstone state, ratio history -- pickles
    bit-identically (the PR 5 property this frame spends).
    """
    saved_violation = monitor.on_violation
    saved_increase = monitor.on_ratio_increase
    monitor.on_violation = None
    monitor.on_ratio_increase = None
    try:
        return pickle.dumps(monitor, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        monitor.on_violation = saved_violation
        monitor.on_ratio_increase = saved_increase


def decode_monitor(blob: bytes) -> OnlineAbcMonitor:
    return pickle.loads(blob)


def encode_trace_state(trace_id: TraceId, state: TraceState) -> tuple:
    """One open trace as a movable unit: monitor blob + bookkeeping.

    ``pending`` is carried verbatim (snapshots never force a flush:
    flush boundaries are scheduling-shaped state the importing side
    should reproduce, not observe).  ``evict_marker`` is deliberately
    dropped -- a futility memo is only valid against the group that
    computed it.
    """
    return (
        trace_id,
        encode_monitor(state.monitor),
        tuple(encode_record(record) for record in state.pending),
        tuple(
            (event.process, event.index, dest, count)
            for (event, dest), count in state.in_flight.items()
        ),
        tuple(state.frontier.items()),
        state.n_records,
        state.last_touch,
        state.live_cached,
        state.reopened,
    )


def decode_trace_state(wire: tuple) -> tuple[TraceId, TraceState]:
    """Rebuild a trace state; the caller (an importing group) must
    re-wire the monitor's violation bookkeeping."""
    from collections import Counter

    (
        trace_id,
        blob,
        pending,
        in_flight,
        frontier,
        n_records,
        last_touch,
        live_cached,
        reopened,
    ) = wire
    state = TraceState(decode_monitor(blob), reopened=reopened)
    state.pending = [decode_record(row) for row in pending]
    state.in_flight = Counter(
        {
            (Event(process, index), dest): count
            for process, index, dest, count in in_flight
        }
    )
    state.frontier = dict(frontier)
    state.n_records = n_records
    state.last_touch = last_touch
    state.live_cached = live_cached
    return trace_id, state


def encode_shard_image(shard: FleetShard) -> tuple:
    """One whole :class:`FleetShard`: open traces (in LRU ingest order,
    which the decode preserves), retired summaries, lifetime counters.
    The unit of migration -- and the per-shard row of a snapshot."""
    return (
        shard.index,
        tuple(
            encode_trace_state(trace_id, state)
            for trace_id, state in shard.traces.items()
        ),
        tuple(encode_summary(s) for s in shard.retired.values()),
        shard.records,
        shard.flushes,
        shard.tombstoned,
        shard.evictions,
        shard.summary_compactions,
        shard.auto_retired,
        shard.retired_oracle_calls,
    )


def decode_shard_image(wire: tuple) -> FleetShard:
    """Rebuild a :class:`FleetShard`; monitors arrive unwired (the
    importing group re-attaches its violation bookkeeping)."""
    (
        index,
        trace_frames,
        retired_rows,
        records,
        flushes,
        tombstoned,
        evictions,
        summary_compactions,
        auto_retired,
        retired_oracle_calls,
    ) = wire
    shard = FleetShard(index)
    for frame in trace_frames:
        trace_id, state = decode_trace_state(frame)
        shard.traces[trace_id] = state
    for row in retired_rows:
        summary = decode_summary(row)
        shard.retired[summary.trace_id] = summary
    shard.records = records
    shard.flushes = flushes
    shard.tombstoned = tombstoned
    shard.evictions = evictions
    shard.summary_compactions = summary_compactions
    shard.auto_retired = auto_retired
    shard.retired_oracle_calls = retired_oracle_calls
    return shard


def encode_group_snapshot(group: ShardGroup) -> tuple:
    """A whole group as one codec-framed image: every shard image plus
    the group clock, violation log (detection order -- what
    ``violating_ids`` reports), overrun count and peak watermark.
    Taken without flushing: the image reproduces the group mid-stream,
    pending buffers and all."""
    return (
        GROUP_SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION,
        group.tick,
        tuple(group.violations),
        group.budget_overruns,
        group.peak_live_events,
        tuple(
            encode_shard_image(shard) for shard in group.shards.values()
        ),
    )


def decode_group_snapshot(
    wire: tuple,
) -> tuple[int, list[TraceId], int, int, list[FleetShard]]:
    """-> (tick, violations, budget_overruns, peak, shards)."""
    if not isinstance(wire, tuple) or wire[:1] != (GROUP_SNAPSHOT_MAGIC,):
        raise ValueError("not a shard-group snapshot frame")
    magic, version, tick, violations, overruns, peak, images = wire
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {version} not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return (
        tick,
        list(violations),
        overruns,
        peak,
        [decode_shard_image(image) for image in images],
    )

"""repro: a reproduction of Robinson & Schmid's Asynchronous
Bounded-Cycle (ABC) model.

The package is organized as:

* :mod:`repro.core` -- the ABC model itself: execution graphs, relevant
  cycles, the synchrony condition and its polynomial decision procedure,
  consistent cuts, the Section-4.1 cycle space, and the Theorem-7 delay
  assignment.
* :mod:`repro.sim` -- a discrete-event simulator for message-driven
  algorithms with crash/Byzantine fault injection and trace recording.
* :mod:`repro.algorithms` -- Algorithm 1 (Byzantine clock sync),
  Algorithm 2 (lock-step rounds), consensus on top, the Figure-3 failure
  detector, and the Section-6 eventual/adaptive variants.
* :mod:`repro.models` -- the related partially synchronous models
  (Theta, ParSync/DLS, Archimedean, FAR, MCM, MMR, WTL) as trace
  checkers, plus the model-relation theorems.
* :mod:`repro.analysis` -- property checkers for Theorems 1-5, the
  online ?ABC/<>ABC monitor, and the serial multi-trace fleet.
* :mod:`repro.runtime` -- the parallel fleet runtime: the
  share-nothing shard engine, the wire codec, process/thread worker
  backends, and the :class:`~repro.runtime.ParallelFleet` dispatcher.
* :mod:`repro.scenarios` -- the paper's figures as executable
  constructions, plus random workload generators.
* :mod:`repro.obs` -- the telemetry plane: the metrics registry
  (counters, gauges, deterministic-merge histograms), record-lifecycle
  tracing spans, and the Prometheus/JSON export surfaces.  Enabled by
  ``REPRO_OBS=1``; near-zero cost when off.

Quickstart::

    from fractions import Fraction
    from repro.sim import Simulator, Network, Topology, ThetaBandDelay
    from repro.sim import SimulationLimits, build_execution_graph
    from repro.algorithms import ClockSyncProcess
    from repro.core import check_abc

    n, f, xi = 4, 1, Fraction(2)
    procs = [ClockSyncProcess(f, max_tick=20) for _ in range(n)]
    net = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, 1.5))
    trace = Simulator(procs, net, seed=1).run(SimulationLimits(max_events=10_000))
    assert check_abc(build_execution_graph(trace), xi).admissible
"""

import logging as _logging

__version__ = "1.0.0"

__all__ = ["__version__"]

# Library logging etiquette: everything under the "repro" logger tree
# is silent unless the application configures handlers (the runtime
# logs worker crashes, recoveries, journal damage, and reconnect
# backoff at the usual levels).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

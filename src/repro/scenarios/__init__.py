"""Paper-figure constructions and random workload generators."""

from repro.scenarios.figures import (
    fig1_graph,
    fig2_graph,
    fig3_graph,
    fig4_graph,
    fig8_trace,
    fig9_graph,
    fig10_graphs,
    ping_pong_chain,
)
from repro.scenarios.generators import (
    clock_sync_run,
    random_execution_graph,
    theta_band_trace,
)

__all__ = [
    "fig1_graph",
    "fig2_graph",
    "fig3_graph",
    "fig4_graph",
    "fig8_trace",
    "fig9_graph",
    "fig10_graphs",
    "ping_pong_chain",
    "clock_sync_run",
    "random_execution_graph",
    "theta_band_trace",
]

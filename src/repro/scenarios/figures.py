"""Programmatic constructions of the paper's figures.

Each ``fig*`` function builds the execution graph (or simulated trace)
shown in the corresponding figure, so that the benchmark suite can verify
the figure's caption as an executable claim.  Where the paper's drawing
leaves process counts or exact hop structure open, the construction is a
structurally equivalent reconstruction, documented per function.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.core.cycles import classify, enumerate_cycles
from repro.core.execution_graph import ExecutionGraph, GraphBuilder
from repro.sim.delays import FixedDelay, PerLinkDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.network import Network, Topology
from repro.sim.process import Process, StepContext
from repro.sim.trace import Trace

__all__ = [
    "fig1_graph",
    "fig2_graph",
    "fig3_graph",
    "fig4_graph",
    "fig8_trace",
    "fig9_graph",
    "fig10_graphs",
    "ping_pong_chain",
]


def ping_pong_chain(
    builder: GraphBuilder,
    a: int,
    b: int,
    a_start: int,
    b_start: int,
    messages: int,
) -> tuple[int, int]:
    """Add a ping-pong chain of ``messages`` messages between processes
    ``a`` and ``b``, starting at event ``(a, a_start)``.

    Returns the next free event indices ``(a_next, b_next)``.  Each reply
    is sent in the step that receives the previous message, so the chain
    is a pure causal chain ``a -> b -> a -> ...``; the starting event
    ``(a, a_start)`` must already exist (or be the wake-up event 0).
    """
    cur: tuple[int, int] = (a, a_start)
    a_free, b_free = a_start + 1, b_start
    for _ in range(messages):
        if cur[0] == a:
            dst = (b, b_free)
            b_free += 1
        else:
            dst = (a, a_free)
            a_free += 1
        builder.message(cur, dst)
        cur = dst
    return a_free, b_free


def fig1_graph() -> tuple[ExecutionGraph, Fraction]:
    """Figure 1: a slow chain C1 spans a fast chain C2.

    C1 = m6 m7 m8 m9: four messages from q via intermediate relays to p.
    C2 = m1 l1 m2 m3 m4 m5 l2: five messages (and two local edges) from q
    to p through other relays; message m3 has zero delay (delays do not
    exist at the graph level -- the benchmark assigns them -- but the
    construction keeps a dedicated hop for it).  The relevant cycle
    formed by the two chains has ``|Z-| = 5`` backward (C2) and
    ``|Z+| = 4`` forward (C1) messages, hence ratio 5/4: admissible
    exactly for ``Xi > 5/4``.

    Returns the graph and the cycle's ratio.
    """
    b = GraphBuilder()
    q, r1, r2, p, s1 = 0, 1, 2, 3, 4
    # Fast chain C2 (5 messages) q -> r1 -> r1 -> r2 -> r2 -> p, with the
    # local edges l1 (at r1) and l2 (at r2) inside.
    b.message((q, 0), (r1, 0))          # m1
    # l1: local edge (r1, 0) -> (r1, 1)
    b.message((r1, 1), (r2, 0))         # m2 (sent one step later)
    b.message((r2, 0), (s1, 0))         # m3 (the zero-delay hop)
    b.message((s1, 0), (r2, 1))         # m4
    # l2: local edge (r2, 1) -> ... wait for reception of chain end
    b.message((r2, 1), (p, 0))          # m5
    # Slow chain C1 (4 messages) q -> s -> q ... ending at p after m5.
    b.message((q, 0), (r1, 2))          # m6
    b.message((r1, 2), (q, 1))          # m7
    b.message((q, 1), (r1, 3))          # m8
    b.message((r1, 3), (p, 1))          # m9 arrives at p after C2's end
    # r1 needs its events contiguous; events (r1, 0..3) exist already.
    graph = b.build()
    return graph, Fraction(5, 4)


def fig2_graph() -> tuple[ExecutionGraph, Any]:
    """Figure 2: relevant cycles X and Y sharing a message ``e`` with
    opposite orientation, so that ``X (+) Y`` cancels ``e``.

    Reconstruction with processes p, q, r:

    * ``X``: the ratio-1 relevant cycle formed by ``e = (q,1) -> (r,1)``
      (forward) and ``x1 = (q,1) -> (r,0)`` (backward);
    * ``Y``: the ratio-2 relevant cycle with forward chain
      ``m1 = (p,0) -> (r,2)`` and backward messages ``e`` and
      ``m2 = (p,0) -> (q,0)``.

    ``e`` is forward in X and backward in Y, exactly the situation the
    figure illustrates.  Returns the graph and the shared message edge.
    """
    b = GraphBuilder()
    p, q, r = 0, 1, 2
    b.message((p, 0), (q, 0))           # m2: backward in Y
    e = b.message((q, 1), (r, 1))       # the shared message e
    b.message((q, 1), (r, 0))           # x1: backward partner in X
    b.message((p, 0), (r, 2))           # m1: forward chain of Y
    graph = b.build()
    return graph, e


def fig3_graph(xi: int = 2) -> tuple[ExecutionGraph, Fraction]:
    """Figure 3: the ping-pong timeout scenario.

    Process p broadcasts to p_slow and p_fast; after ``xi`` ping-pong
    round trips with p_fast (a causal chain of ``2 xi`` messages), the
    reply of p_slow arrives -- closing a relevant cycle with
    ``|Z-| = 2 xi`` and ``|Z+| = 2``, i.e. ratio ``xi``: inadmissible for
    the given ``Xi``, which is exactly why p may time p_slow out.

    Returns the graph (with the late reply included) and the cycle ratio.
    """
    b = GraphBuilder()
    p, fast, slow = 0, 1, 2
    p_next, fast_next = ping_pong_chain(b, p, fast, 0, 0, 2 * xi)
    b.message((p, 0), (slow, 0))                 # probe to p_slow
    b.message((slow, 0), (p, p_next))            # late reply: after chain
    graph = b.build()
    return graph, Fraction(2 * xi, 2)


def fig4_graph(xi: int = 2) -> ExecutionGraph:
    """Figure 4: the same scenario, but the reply arrives *before* the
    event ``psi`` that ends the fast chain -- the closed cycle N is
    non-relevant and nothing is violated."""
    b = GraphBuilder()
    p, fast, slow = 0, 1, 2
    # Fast chain: the first 2 xi - 1 messages land normally; the slow
    # reply (phi) slips in before the chain's last message (psi).
    p_next, fast_next = ping_pong_chain(b, p, fast, 0, 0, 2 * xi - 1)
    chain_head = (fast, fast_next - 1)           # odd chain ends at `fast`
    b.message((p, 0), (slow, 0))
    b.message((slow, 0), (p, p_next))            # phi: reply arrives here
    b.message(chain_head, (p, p_next + 1))       # psi: last chain message
    return b.build()


class _Fig8Pinger(Process):
    """Ping-pong driver for the Figure 8 trace (prover strategy)."""

    def __init__(self, peer: int, rounds: int) -> None:
        self.peer = peer
        self.rounds = rounds
        self._count = 0

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.send(self.peer, ("ping", 0))
        # A second, unanswered message to the peer creates the figure's
        # ratio-1 relevant cycle ("valid for any Xi > 1").
        ctx.send(self.peer, ("extra", -1))

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        kind, i = payload
        if kind == "ping":
            ctx.send(sender, ("pong", i))
        elif kind == "pong" and i + 1 < self.rounds:
            ctx.send(self.peer, ("ping", i + 1))


class _Fig8Sender(Process):
    """Sends the one very slow message to the silent process r."""

    def __init__(self, slow_dest: int) -> None:
        self.slow_dest = slow_dest

    def on_wakeup(self, ctx: StepContext) -> None:
        ctx.send(self.slow_dest, "slow")

    def on_message(self, ctx: StepContext, payload: Any, sender: int) -> None:
        if isinstance(payload, tuple) and payload[0] == "ping":
            ctx.send(sender, ("pong", payload[1]))


def fig8_trace(phi: int, delta: int) -> Trace:
    """Figure 8 / Section 5.1 game: an execution ABC-admissible for any
    ``Xi > 1`` that ParSync cannot model with the given ``(Phi, Delta)``.

    Processes p and q ping-pong for more than ``max(Phi, Delta)`` global
    ticks while a message from q to r is in transit and r takes no step
    (its wake-up arrives after everything else).  The only cycles in the
    execution graph are ping-pong 2-cycles through local edges, which are
    non-relevant or ratio-1, so the worst relevant ratio is at most 1.
    """
    rounds = max(phi, delta) + 2
    p, q, r = 0, 1, 2
    pinger = _Fig8Pinger(peer=q, rounds=rounds)
    sender = _Fig8Sender(slow_dest=r)
    silent = Process()
    horizon = 4.0 * rounds + 10.0
    delays = PerLinkDelay(
        {(q, r): FixedDelay(horizon)},
        default=FixedDelay(1.0),
    )
    network = Network(Topology.fully_connected(3), delays)
    sim = Simulator(
        [pinger, sender, silent],
        network,
        seed=0,
        start_times=[0.0, 0.0, horizon + 1.0],
    )
    return sim.run(SimulationLimits(max_events=10 * rounds + 20))


def fig9_graph(
    fast_round_trips: int = 2,
) -> tuple[ExecutionGraph, Fraction | None]:
    """Figure 9: multi-hop delay compensation.

    Process q exchanges messages with p over the 1-hop path P_qpq and
    with s over the 2-hop path P_qrsrq via r.  The relevant cycle formed
    by ``fast_round_trips`` q-p round trips spanning one q-r-s-r-q round
    trip has ratio ``2 * fast_round_trips / 4``; individual delays on the
    q-r and r-s links are irrelevant as long as the *cumulative* delay of
    the 4-hop path stays above the fast chain's.  Returns the graph and
    its worst relevant ratio (computed by the caller's checker).
    """
    b = GraphBuilder()
    q, p, r, s = 0, 1, 2, 3
    q_next, _ = ping_pong_chain(b, q, p, 0, 0, 2 * fast_round_trips)
    # The 2-hop round trip q -> r -> s -> r -> q, closing after the fast
    # chain (so the fast messages are the backward class).
    b.message((q, 0), (r, 0))
    b.message((r, 0), (s, 0))
    b.message((s, 0), (r, 1))
    b.message((r, 1), (q, q_next))
    graph = b.build()
    ratio = Fraction(2 * fast_round_trips, 4)
    return graph, ratio


def fig10_graphs(xi: int = 4) -> tuple[ExecutionGraph, ExecutionGraph]:
    """Figure 10: ABC-enforced FIFO order on the link p2 -> q1.

    p2 sends message A to q1, then completes ``xi`` messages of causal
    chain with p1, then sends message B to q1.  Returns two graphs:

    * ``in_order``: A arrives before B -- the cycle through the chain is
      non-relevant; the graph is admissible for ``Xi = xi``;
    * ``reordered``: B arrives before A -- A's late arrival closes a
      relevant cycle with ``|Z-| = xi + 1`` and ``|Z+| = 1`` (ratio
      ``xi + 1``), violating condition (2) for ``Xi = xi``.  Hence the
      reordering cannot happen in an admissible execution: the channel is
      FIFO even though its delays are unbounded.

    ``xi`` must be even: the chain must return to p2 so that all of its
    messages lie on the cycle (the figure's Xi is 4).
    """
    if xi % 2 != 0:
        raise ValueError("fig10 needs an even Xi (the chain must end at p2)")

    def build(reordered: bool) -> ExecutionGraph:
        b = GraphBuilder()
        p1, p2, q1 = 0, 1, 2
        # Chain of xi messages p2 -> p1 -> p2 -> ... starting after A.
        p2_next, _ = ping_pong_chain(b, p2, p1, 1, 0, xi)
        first, second = (1, 0) if reordered else (0, 1)
        b.message((p2, 0), (q1, first))       # A sent before the chain
        b.message((p2, p2_next), (q1, second))  # B sent after the chain
        return b.build()

    return build(reordered=False), build(reordered=True)

"""Random workload generators for tests and benchmarks.

Two kinds of randomness are useful:

* :func:`random_execution_graph` -- synthetic execution graphs built
  directly (no simulation): messages attach a fresh receive event to a
  random earlier step, so validity (DAG, one trigger per event) holds by
  construction while the ABC condition may or may not.  Ideal for
  property-based testing of the checkers and the Theorem 7 equivalence.
* :func:`theta_band_trace` -- simulated Algorithm-1 executions under a
  Theta-band delay model; ABC-admissible for any ``Xi > Theta`` by
  Theorem 6, with realistic message patterns.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Sequence

from repro.algorithms.clock_sync import ClockSyncProcess
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, GraphBuilder
from repro.sim.delays import ThetaBandDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.network import Network, Topology
from repro.sim.trace import Trace

__all__ = [
    "random_execution_graph",
    "theta_band_trace",
    "clock_sync_run",
]


def random_execution_graph(
    rng: random.Random,
    n_processes: int = 3,
    n_messages: int = 8,
    locality: float = 0.5,
) -> ExecutionGraph:
    """A random valid execution graph.

    Events are created in causal order: each new message picks an
    already-existing event as its sending step (biased towards recent
    events by ``locality``) and appends a fresh receive event at a random
    process, so every event has at most one incoming message and the
    digraph is acyclic by construction.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    builder = GraphBuilder()
    next_index = [1 for _ in range(n_processes)]
    events: list[Event] = [builder.event(p, 0) for p in range(n_processes)]
    for _ in range(n_messages):
        if rng.random() < locality and len(events) > n_processes:
            src = events[rng.randrange(len(events) // 2, len(events))]
        else:
            src = events[rng.randrange(len(events))]
        dst_process = rng.randrange(n_processes)
        dst = builder.event(dst_process, next_index[dst_process])
        next_index[dst_process] += 1
        builder.message(src, dst)
        events.append(dst)
    return builder.build()


def clock_sync_run(
    n: int,
    f: int,
    theta: float,
    max_tick: int,
    seed: int = 0,
    faulty_procs: Sequence[object] = (),
) -> tuple[Trace, list[object]]:
    """Run Algorithm 1 under a Theta-band network; returns (trace,
    processes).  ``faulty_procs`` replace the *last* ``len(faulty_procs)``
    correct processes and are reported as faulty in the trace."""
    processes: list[object] = [
        ClockSyncProcess(f, max_tick=max_tick) for _ in range(n)
    ]
    faulty_ids = set()
    for i, proc in enumerate(faulty_procs):
        pid = n - 1 - i
        processes[pid] = proc
        faulty_ids.add(pid)
    network = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, theta))
    sim = Simulator(processes, network, faulty=faulty_ids, seed=seed)
    trace = sim.run(SimulationLimits(max_events=200_000))
    return trace, processes


def theta_band_trace(
    n: int = 4,
    f: int = 1,
    theta: float = 1.5,
    max_tick: int = 10,
    seed: int = 0,
) -> Trace:
    """A Theta-band Algorithm-1 trace (ABC-admissible for ``Xi > theta``)."""
    trace, _processes = clock_sync_run(n, f, theta, max_tick, seed=seed)
    return trace

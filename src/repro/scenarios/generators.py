"""Random workload generators for tests and benchmarks.

Three kinds of randomness are useful:

* :func:`random_execution_graph` -- synthetic execution graphs built
  directly (no simulation): messages attach a fresh receive event to a
  random earlier step, so validity (DAG, one trigger per event) holds by
  construction while the ABC condition may or may not.  Ideal for
  property-based testing of the checkers and the Theorem 7 equivalence.
* :func:`streaming_records` -- the same random construction emitted as a
  *stream* of :class:`~repro.sim.trace.ReceiveRecord` objects in global
  delivery order, i.e. a growing execution as an online monitor sees it.
  Every finite prefix of the stream is a valid trace, which is exactly
  the workload shape of the ?ABC / <>ABC monitoring primitives.
* :func:`theta_band_trace` -- simulated Algorithm-1 executions under a
  Theta-band delay model; ABC-admissible for any ``Xi > Theta`` by
  Theorem 6, with realistic message patterns.

A fourth family stresses the ABC-*enforcing* scheduler
(:class:`~repro.sim.abc_scheduler.AbcEnforcingSimulator`): workload
setups -- ``(processes, network)`` pairs -- whose raw delays would break
admissibility, so the enforcer has to intervene.  :func:`ping_pong_storm`
races fast round-trip chains against a slow link (Figure 3 at scale),
:func:`zero_delay_burst` drives the fast chains at literally zero delay
(the paper's ``m3`` observation pushed to the limit), and
:func:`long_silence` leaves a link silent for epochs at a time.
:func:`random_enforcer_setup` draws randomized mixtures of all three for
differential and property testing.

A fifth family feeds the *multi-trace* fleet monitor
(:class:`~repro.analysis.fleet.MonitorFleet`):
:func:`concurrent_workload` interleaves many independent record streams
-- ping-pong storms, clustered bursts, long-silence idlers -- into one
global ``(trace_id, record)`` stream in arrival order, with every
record carrying full ``sends`` metadata so in-flight messages are
knowable and budget-driven eviction stays exact.
:func:`skewed_workload` is the same interleaving with *mined* trace ids:
ids are searched until their stable CRC32 route lands on a chosen set of
hot shards, concentrating most of the stream on few shards -- the
hot-placement population that exercises
:meth:`~repro.runtime.ParallelFleet.migrate_shard` and
:meth:`~repro.runtime.ParallelFleet.rebalance_placement`.
"""

from __future__ import annotations

import dataclasses
import random
from fractions import Fraction
from typing import Iterator, Sequence

from repro.algorithms.clock_sync import ClockSyncProcess
from repro.algorithms.failure_detector import PingPongMonitor, PongResponder
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph, GraphBuilder
from repro.sim.delays import FixedDelay, PerLinkDelay, ThetaBandDelay, UniformDelay
from repro.sim.engine import SimulationLimits, Simulator
from repro.sim.network import Network, Topology
from repro.sim.process import Process
from repro.sim.trace import ReceiveRecord, SendRecord, Trace

__all__ = [
    "random_execution_graph",
    "streaming_records",
    "streaming_trace",
    "theta_band_trace",
    "clock_sync_run",
    "ping_pong_storm",
    "zero_delay_burst",
    "long_silence",
    "random_enforcer_setup",
    "concurrent_workload",
    "profiled_trace_records",
    "relay_chain_workload",
    "skewed_workload",
    "strip_sends_metadata",
]


def _pick_source(
    rng: random.Random,
    events: Sequence[Event],
    locality: float,
    n_processes: int,
) -> Event:
    """A random existing event to send from, biased towards recent ones
    (the shared locality rule of the random generators)."""
    if rng.random() < locality and len(events) > n_processes:
        return events[rng.randrange(len(events) // 2, len(events))]
    return events[rng.randrange(len(events))]


def random_execution_graph(
    rng: random.Random,
    n_processes: int = 3,
    n_messages: int = 8,
    locality: float = 0.5,
) -> ExecutionGraph:
    """A random valid execution graph.

    Events are created in causal order: each new message picks an
    already-existing event as its sending step (biased towards recent
    events by ``locality``) and appends a fresh receive event at a random
    process, so every event has at most one incoming message and the
    digraph is acyclic by construction.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    builder = GraphBuilder()
    next_index = [1 for _ in range(n_processes)]
    events: list[Event] = [builder.event(p, 0) for p in range(n_processes)]
    for _ in range(n_messages):
        src = _pick_source(rng, events, locality, n_processes)
        dst_process = rng.randrange(n_processes)
        dst = builder.event(dst_process, next_index[dst_process])
        next_index[dst_process] += 1
        builder.message(src, dst)
        events.append(dst)
    return builder.build()


def streaming_records(
    rng: random.Random,
    n_processes: int = 3,
    n_records: int = 50,
    p_message: float = 0.9,
    locality: float = 0.5,
) -> Iterator[ReceiveRecord]:
    """A stream of receive records forming a growing valid execution.

    The first ``n_processes`` records are the external wake-ups (one per
    process); each later record appends a fresh receive event at a random
    process, triggered with probability ``p_message`` by a message from a
    random earlier step (biased towards recent steps by ``locality``, as
    in :func:`random_execution_graph`) and otherwise by another wake-up.
    Occurrence times strictly increase, so every prefix of the stream is
    a well-formed trace and :func:`~repro.sim.trace.build_execution_graph`
    accepts it; the worst relevant ratio of the prefixes typically grows
    several times over the stream, exercising the incremental monitor's
    rare path as well as its steady state.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    if n_records < n_processes:
        raise ValueError("need at least one (wake-up) record per process")

    def record(
        event: Event,
        time: float,
        sender: int | None,
        send_event: Event | None,
        send_time: float | None,
    ) -> ReceiveRecord:
        return ReceiveRecord(
            event=event,
            time=time,
            sender=sender,
            send_event=send_event,
            send_time=send_time,
            payload=None,
            processed=True,
            sends=(),
        )

    now = 0.0
    next_index = [1] * n_processes
    events: list[Event] = []
    times: dict[Event, float] = {}
    for p in range(n_processes):
        ev = Event(p, 0)
        now += rng.random() + 0.05
        events.append(ev)
        times[ev] = now
        yield record(ev, now, None, None, None)
    for _ in range(n_records - n_processes):
        now += rng.random() + 0.05
        dst_process = rng.randrange(n_processes)
        dst = Event(dst_process, next_index[dst_process])
        next_index[dst_process] += 1
        if rng.random() < p_message:
            src = _pick_source(rng, events, locality, n_processes)
            yield record(dst, now, src.process, src, times[src])
        else:
            yield record(dst, now, None, None, None)
        events.append(dst)
        times[dst] = now


def streaming_trace(
    rng: random.Random,
    n_processes: int = 3,
    n_records: int = 50,
    p_message: float = 0.9,
    locality: float = 0.5,
) -> Trace:
    """The :func:`streaming_records` stream materialized as a trace."""
    records = list(
        streaming_records(rng, n_processes, n_records, p_message, locality)
    )
    return Trace(n_processes, frozenset(), records)


def clock_sync_run(
    n: int,
    f: int,
    theta: float,
    max_tick: int,
    seed: int = 0,
    faulty_procs: Sequence[object] = (),
) -> tuple[Trace, list[object]]:
    """Run Algorithm 1 under a Theta-band network; returns (trace,
    processes).  ``faulty_procs`` replace the *last* ``len(faulty_procs)``
    correct processes and are reported as faulty in the trace."""
    processes: list[object] = [
        ClockSyncProcess(f, max_tick=max_tick) for _ in range(n)
    ]
    faulty_ids = set()
    for i, proc in enumerate(faulty_procs):
        pid = n - 1 - i
        processes[pid] = proc
        faulty_ids.add(pid)
    network = Network(Topology.fully_connected(n), ThetaBandDelay(1.0, theta))
    sim = Simulator(processes, network, faulty=faulty_ids, seed=seed)
    trace = sim.run(SimulationLimits(max_events=200_000))
    return trace, processes


def theta_band_trace(
    n: int = 4,
    f: int = 1,
    theta: float = 1.5,
    max_tick: int = 10,
    seed: int = 0,
) -> Trace:
    """A Theta-band Algorithm-1 trace (ABC-admissible for ``Xi > theta``)."""
    trace, _processes = clock_sync_run(n, f, theta, max_tick, seed=seed)
    return trace


# ----------------------------------------------------------------------
# enforcer-stressing workloads
# ----------------------------------------------------------------------


def _monitor_setup(
    n_responders: int,
    xi: Fraction | int | float,
    max_probes: int,
    slow_links: dict[tuple[int, int], object],
    default_delay: object,
) -> tuple[list[Process], Network]:
    """A ping-pong monitor (pid 0) over responders with per-link delays."""
    if n_responders < 1:
        raise ValueError("need at least one responder")
    monitor = PingPongMonitor(
        targets=list(range(1, n_responders + 1)), xi=xi, max_probes=max_probes
    )
    processes: list[Process] = [monitor]
    processes += [PongResponder() for _ in range(n_responders)]
    network = Network(
        Topology.fully_connected(n_responders + 1),
        PerLinkDelay(slow_links, default=default_delay),
    )
    return processes, network


def ping_pong_storm(
    n_responders: int = 3,
    xi: Fraction | int | float = Fraction(2),
    slow: float = 25.0,
    fast: float = 1.0,
    max_probes: int = 8,
) -> tuple[list[Process], Network]:
    """Fast ping-pong chains racing one massively delayed responder.

    The Figure-3 situation at scale: the monitor completes round trips
    with ``n_responders - 1`` fast peers while the last responder sits
    behind a ``slow / fast`` delay spread, so a plain scheduler closes
    relevant cycles of ratio up to that spread and the enforcer has to
    keep pulling the slow replies forward.
    """
    slow_pid = n_responders
    links = {
        (0, slow_pid): FixedDelay(slow),
        (slow_pid, 0): FixedDelay(slow),
    }
    return _monitor_setup(n_responders, xi, max_probes, links, FixedDelay(fast))


def zero_delay_burst(
    n_responders: int = 2,
    xi: Fraction | int | float = Fraction(2),
    slow: float = 15.0,
    max_probes: int = 6,
) -> tuple[list[Process], Network]:
    """Zero-delay fast chains against a slow link.

    The paper observes (Figure 1, message ``m3``) that the ABC model
    tolerates zero-delay messages; here *every* fast link delivers
    instantaneously, so unboundedly many chain messages fit into any
    nonzero slow delay and admissibility rests entirely on the
    enforcer's intervention.
    """
    slow_pid = n_responders
    links = {
        (0, slow_pid): FixedDelay(slow),
        (slow_pid, 0): FixedDelay(slow),
    }
    return _monitor_setup(n_responders, xi, max_probes, links, FixedDelay(0.0))


def long_silence(
    n_responders: int = 2,
    xi: Fraction | int | float = Fraction(2),
    silence: float = 400.0,
    fast_low: float = 0.5,
    fast_high: float = 1.5,
    max_probes: int = 10,
) -> tuple[list[Process], Network]:
    """A responder that falls silent for epochs at a time.

    Both directions of the last responder's link take ``silence`` time
    units while the rest of the system keeps jittering along at unit
    delays -- many probe rounds complete during one silent gap, which is
    the long-silence regime the time-free ABC condition is meant to
    survive.
    """
    silent_pid = n_responders
    links = {
        (0, silent_pid): FixedDelay(silence),
        (silent_pid, 0): FixedDelay(silence),
    }
    return _monitor_setup(
        n_responders, xi, max_probes, links, UniformDelay(fast_low, fast_high)
    )


def random_enforcer_setup(
    rng: random.Random,
) -> tuple[list[Process], Network, Fraction]:
    """A randomized enforcer-stressing workload: ``(processes, network, xi)``.

    Draws one of the three stress families with randomized sizes, delay
    spreads (including exact zeros), and synchrony parameters -- the
    workload distribution behind the differential and property tests of
    the incremental enforcer.
    """
    xi = rng.choice([Fraction(3, 2), Fraction(2), Fraction(5, 2), Fraction(3)])
    n_responders = rng.randint(1, 3)
    family = rng.randrange(3)
    if family == 0:
        processes, network = ping_pong_storm(
            n_responders,
            xi,
            slow=rng.uniform(5.0, 60.0),
            fast=rng.uniform(0.5, 2.0),
            max_probes=rng.randint(2, 6),
        )
    elif family == 1:
        processes, network = zero_delay_burst(
            n_responders,
            xi,
            slow=rng.uniform(2.0, 30.0),
            max_probes=rng.randint(2, 5),
        )
    else:
        processes, network = long_silence(
            n_responders,
            xi,
            silence=rng.uniform(50.0, 500.0),
            fast_low=rng.uniform(0.1, 0.8),
            fast_high=rng.uniform(1.0, 2.5),
            max_probes=rng.randint(3, 8),
        )
    return processes, network, xi


# ----------------------------------------------------------------------
# multi-trace fleet workloads
# ----------------------------------------------------------------------


def _materialize_records(
    skeleton: Sequence[tuple[Event, float, Event | None]],
) -> list[ReceiveRecord]:
    """Turn ``(event, time, triggering send event | None)`` rows into
    receive records with *complete* ``sends`` metadata.

    The skeleton lists messages by their receive; this pass inverts that
    view so every record also announces the messages its step sent --
    the in-flight knowledge :class:`~repro.analysis.fleet.MonitorFleet`
    needs to pin send events and keep eviction exact.
    """
    times = {event: time for event, time, _src in skeleton}
    sends: dict[Event, list[SendRecord]] = {}
    for event, time, src in skeleton:
        if src is not None:
            sends.setdefault(src, []).append(
                SendRecord(
                    dest=event.process,
                    payload=None,
                    delay=time - times[src],
                    deliver_time=time,
                )
            )
    return [
        ReceiveRecord(
            event=event,
            time=time,
            sender=None if src is None else src.process,
            send_event=src,
            send_time=None if src is None else times[src],
            payload=None,
            processed=True,
            sends=tuple(sends.get(event, ())),
        )
        for event, time, src in skeleton
    ]


def _storm_skeleton(
    rng: random.Random, n_records: int
) -> list[tuple[Event, float, Event | None]]:
    """A fig-3 storm: a fast ping-pong chain between processes 0 and 1
    racing slow round trips through process 2.

    Each slow round trip (0 -> 2 -> 0) spans the ever-running fast chain,
    closing relevant cycles whose ratio grows with the span -- and the
    chain links history to the frontier, so storm traces are the
    *unsettleable* population of a fleet (nothing tombstonable).
    """
    skeleton: list[tuple[Event, float, Event | None]] = []
    next_index = [0, 0, 0]
    now = 0.0

    def emit(process: int, src: Event | None) -> Event:
        nonlocal now
        now += rng.uniform(0.01, 0.1)
        event = Event(process, next_index[process])
        next_index[process] += 1
        skeleton.append((event, now, src))
        return event

    last = emit(0, None)  # the chain's wake-up
    # (due at chain step, src event, destination process)
    slow: list[tuple[int, Event, int]] = []
    span = rng.randint(4, 9)
    for step in range(1, n_records):
        due = [s for s in slow if s[0] <= step]
        if due:
            slow.remove(due[0])
            _due, src, dest = due[0]
            arrival = emit(dest, src)
            if dest == 2:  # the echo: schedule the reply leg
                slow.append((step + span, arrival, 0))
        else:
            last = emit(1 - last.process, last)
            if last.process == 0 and not slow and rng.random() < 0.5:
                slow.append((step + span, last, 2))
                span += rng.randint(1, 3)  # later cycles span more chain
    return skeleton


def _burst_skeleton(
    rng: random.Random,
    n_records: int,
    n_processes: int = 3,
    cluster: tuple[int, int] = (6, 14),
    gap: float = 50.0,
) -> list[tuple[Event, float, Event | None]]:
    """Clustered bursts: each cluster wakes every process afresh, then
    exchanges messages only among the cluster's own events.

    Because no message refers back past a cluster's wake-ups, everything
    before the live cluster is settled -- the population budget-driven
    eviction can actually reclaim.
    """
    skeleton: list[tuple[Event, float, Event | None]] = []
    next_index = [0] * n_processes
    now = 0.0

    def emit(process: int, src: Event | None) -> Event:
        nonlocal now
        now += rng.uniform(0.001, 0.01)
        event = Event(process, next_index[process])
        next_index[process] += 1
        skeleton.append((event, now, src))
        return event

    while len(skeleton) < n_records:
        now += gap * rng.uniform(0.5, 1.5)  # silence between clusters
        fresh = [emit(p, None) for p in range(n_processes)]
        for _ in range(rng.randint(*cluster)):
            if len(skeleton) >= n_records:
                break
            src = fresh[rng.randrange(len(fresh))]
            dst_process = rng.randrange(n_processes)
            fresh.append(emit(dst_process, src))
    return skeleton


def _idler_skeleton(
    rng: random.Random, n_records: int
) -> list[tuple[Event, float, Event | None]]:
    """A long-silence idler: tiny clusters separated by epochs of
    nothing; most of the trace is settled history almost immediately."""
    return _burst_skeleton(
        rng, n_records, n_processes=2, cluster=(1, 4), gap=500.0
    )


def _relay_skeleton(
    rng: random.Random, n_records: int, n_processes: int = 3
) -> list[tuple[Event, float, Event | None]]:
    """A single relay chain threading every process, racing slow echoes.

    One causal chain relays around the ring ``0 -> 1 -> ... -> 0``;
    occasionally the chain's process-0 step also probes a ring member
    whose echo returns ``span`` chain steps later, closing relevant
    cycles whose ratio grows with the span.  Every event extends the
    one chain, so *every* possible prefix boundary has a message
    crossing it -- the no-crossing criterion removes nothing, ever --
    while delivery progress keeps the frontier tiny: the adversarial
    shape for exact tombstoning and the home turf of summary
    compaction.
    """
    skeleton: list[tuple[Event, float, Event | None]] = []
    next_index = [0] * n_processes
    now = 0.0

    def emit(process: int, src: Event | None) -> Event:
        nonlocal now
        now += rng.uniform(0.01, 0.1)
        event = Event(process, next_index[process])
        next_index[process] += 1
        skeleton.append((event, now, src))
        return event

    last = emit(0, None)  # the chain's wake-up
    echo_pid = n_processes - 1
    # (due at chain step, src event, destination process)
    slow: list[tuple[int, Event, int]] = []
    span = rng.randint(2 * n_processes, 3 * n_processes)
    for step in range(1, n_records):
        due = [s for s in slow if s[0] <= step]
        if due:
            slow.remove(due[0])
            _due, src, dest = due[0]
            arrival = emit(dest, src)
            if dest == echo_pid:  # the echo: schedule the reply leg
                slow.append((step + span, arrival, 0))
        else:
            last = emit((last.process + 1) % n_processes, last)
            if last.process == 0 and not slow and rng.random() < 0.5:
                slow.append((step + span, last, echo_pid))
                span += rng.randint(1, 3)  # later cycles span more chain
    return skeleton


def _firehose_skeleton(
    rng: random.Random, n_records: int, n_processes: int = 4
) -> list[tuple[Event, float, Event | None]]:
    """A dense all-to-all firehose: after one wake-up per process,
    every event is triggered by a message from a recent event and
    fans out immediately.

    Inter-arrival gaps are tiny and there are no silences, so records
    arrive in dense batches; every record past the wake-ups carries a
    triggering message and sends metadata.  A sliding window of recent
    events keeps message spans short (ratios stay near 1 and the
    frontier dense) -- the best case for columnar batch absorption,
    where per-record object overhead, not oracle time, dominates.
    """
    skeleton: list[tuple[Event, float, Event | None]] = []
    next_index = [0] * n_processes
    now = 0.0

    def emit(process: int, src: Event | None) -> Event:
        nonlocal now
        now += rng.uniform(0.0001, 0.001)
        event = Event(process, next_index[process])
        next_index[process] += 1
        skeleton.append((event, now, src))
        return event

    recent = [emit(p, None) for p in range(n_processes)]
    while len(skeleton) < n_records:
        src = recent[rng.randrange(len(recent))]
        recent.append(emit(rng.randrange(n_processes), src))
        if len(recent) > 2 * n_processes:
            recent.pop(0)
    return skeleton


_PROFILES = {
    "storm": _storm_skeleton,
    "burst": _burst_skeleton,
    "idler": _idler_skeleton,
    "relay": _relay_skeleton,
    "firehose": _firehose_skeleton,
}


def profiled_trace_records(
    rng: random.Random, profile: str, n_records: int
) -> list[ReceiveRecord]:
    """One trace's records under a named activity profile.

    Profiles (the per-trace building blocks of
    :func:`concurrent_workload`):

    * ``"storm"``  -- a fast ping-pong chain racing slow round trips
      (relevant cycles of growing ratio; nothing ever settles);
    * ``"burst"``  -- clustered exchanges between causally fresh
      wake-ups (ratio-1-and-up cycles; old clusters settle);
    * ``"idler"``  -- long silences around tiny clusters (mostly
      settled history);
    * ``"relay"``  -- one long relay chain around three processes with
      slow cross echoes (see :func:`relay_chain_workload` -- no prefix
      is ever exactly removable, the summary-compaction stress shape);
    * ``"firehose"`` -- dense all-to-all exchange with no silences
      (message-dense batches, short spans -- the columnar ingest
      path's best case, and ``bench_e2e.py``'s workload).

    Every prefix of the returned list is a valid growing execution, and
    ``sends`` metadata is complete (each message appears in its send
    event's record), so in-flight pinning -- and with it exact fleet
    eviction -- works on these streams.
    """
    try:
        skeleton_of = _PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}"
        ) from None
    if n_records < 1:
        raise ValueError("need at least one record")
    # Clusters may overshoot by their wake-ups; trimming the tail keeps
    # every prefix valid (sends metadata is derived after the trim, so a
    # message whose receive was trimmed simply stays in flight).
    return _materialize_records(skeleton_of(rng, n_records)[:n_records])


def relay_chain_workload(
    rng: random.Random, n_records: int = 200, n_processes: int = 3
) -> list[ReceiveRecord]:
    """A long single-chain relay trace with complete sends metadata.

    The adversarial shape for prefix eviction (ROADMAP: "stronger
    tombstoning for chain-shaped workloads"): one causal chain relays
    around ``n_processes`` processes forever, so a message crosses
    *every* prefix boundary and :meth:`~repro.analysis.online.OnlineAbcMonitor.settled_prefix`
    is empty on every prefix of the stream -- exact eviction can never
    reclaim anything.  Slow echo round trips racing the chain close
    relevant cycles of growing ratio, so the running worst ratio is
    nontrivial and summary compaction's bit-identity is genuinely
    exercised.  ``sends`` metadata is complete (each message appears in
    its send event's record), so in-flight pinning -- and with it exact
    budget-bounded fleet monitoring -- works on these streams; every
    prefix is a valid growing execution.
    """
    if n_processes < 2:
        raise ValueError("a relay chain needs at least two processes")
    if n_records < 1:
        raise ValueError("need at least one record")
    return _materialize_records(
        _relay_skeleton(rng, n_records, n_processes)[:n_records]
    )


def strip_sends_metadata(
    records: Sequence[ReceiveRecord],
) -> list[ReceiveRecord]:
    """The same stream without its ``sends`` announcements.

    Models the *degraded* ingestion regime: triggering-message fields
    stay (the graph is unchanged), but no record announces what its
    step sent, so in-flight messages are unknowable -- budget-driven
    eviction and adaptive compaction can then cut a prefix an unseen
    message still crosses, which the monitoring layers must survive by
    flagging (``degraded``) rather than crashing.  Used by the wire
    codec and fleet degradation tests.
    """
    return [dataclasses.replace(r, sends=()) for r in records]


def concurrent_workload(
    rng: random.Random,
    n_traces: int = 20,
    records_per_trace: tuple[int, int] = (30, 80),
    profile_weights: dict[str, float] | None = None,
) -> Iterator[tuple[str, ReceiveRecord]]:
    """An interleaved multi-trace stream: ``(trace_id, record)`` pairs.

    Each trace draws a profile (see :func:`profiled_trace_records`) and
    a record count, gets a random start offset, and the per-trace
    streams are merged by arrival time -- the ingestion order a
    production monitor sees: storms hammering single traces, bursts
    arriving in clumps, idlers trickling alongside.  Per-trace record
    order is preserved, so every trace's subsequence is a valid growing
    execution; trace ids are ``"<profile>-<k>"``.
    """
    yield from _interleaved_workload(
        rng,
        n_traces,
        records_per_trace,
        profile_weights,
        lambda profile, k: f"{profile}-{k}",
    )


def _interleaved_workload(
    rng: random.Random,
    n_traces: int,
    records_per_trace: tuple[int, int],
    profile_weights: dict[str, float] | None,
    mint_id,
) -> Iterator[tuple[str, ReceiveRecord]]:
    """The shared draw-profiles-and-merge-by-arrival machinery of
    :func:`concurrent_workload` and :func:`skewed_workload`;
    ``mint_id(profile, k)`` names each trace."""
    if n_traces < 1:
        raise ValueError("need at least one trace")
    weights = profile_weights or {"storm": 0.3, "burst": 0.45, "idler": 0.25}
    names = sorted(weights)
    streams: list[tuple[float, int, str, ReceiveRecord]] = []
    for k in range(n_traces):
        profile = rng.choices(names, [weights[n] for n in names])[0]
        n_records = rng.randint(*records_per_trace)
        records = profiled_trace_records(rng, profile, n_records)
        start = rng.uniform(0.0, 200.0)
        trace_id = mint_id(profile, k)
        for record in records:
            streams.append((start + record.time, k, trace_id, record))
    streams.sort(key=lambda item: (item[0], item[1]))
    for _arrival, _k, trace_id, record in streams:
        yield trace_id, record


def skewed_workload(
    rng: random.Random,
    n_traces: int = 20,
    records_per_trace: tuple[int, int] = (30, 80),
    *,
    n_shards: int = 8,
    hot_shards: Sequence[int] = (0,),
    hot_fraction: float = 0.8,
    profile_weights: dict[str, float] | None = None,
) -> Iterator[tuple[str, ReceiveRecord]]:
    """A :func:`concurrent_workload` whose trace ids pile onto few shards.

    Trace routing is a stable CRC32 of the id
    (:func:`repro.runtime.shard.shard_index_of`), so a *population* can
    be skewed only through its ids: for each trace this generator
    decides hot (probability ``hot_fraction``) or cold, then mines a
    ``"<profile>-<k>~<nonce>"`` id whose route lands on (respectively
    off) the ``hot_shards`` under ``n_shards``-way sharding.  Pass the
    monitoring fleet the *same* ``n_shards`` and most of the stream
    concentrates on the hot shards' worker -- the pinned-placement
    regime :meth:`~repro.runtime.ParallelFleet.rebalance_placement` and
    live migration exist to unpin (and the skew-profile scenario the
    benchmarks use).  Per-trace streams and the arrival-order merge are
    exactly :func:`concurrent_workload`'s.
    """
    from repro.runtime.shard import shard_index_of

    if n_shards < 1:
        raise ValueError("need at least one shard")
    hot = {s for s in hot_shards}
    if not hot or not all(0 <= s < n_shards for s in hot):
        raise ValueError(
            f"hot_shards must be a nonempty subset of range({n_shards})"
        )
    if len(hot) == n_shards and hot_fraction < 1.0:
        raise ValueError("with every shard hot there is no cold id to mine")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be within [0, 1]")

    def mint_id(profile: str, k: int) -> str:
        want_hot = rng.random() < hot_fraction
        nonce = 0
        while True:
            trace_id = f"{profile}-{k}~{nonce}"
            if (shard_index_of(trace_id, n_shards) in hot) == want_hot:
                return trace_id
            nonce += 1

    yield from _interleaved_workload(
        rng, n_traces, records_per_trace, profile_weights, mint_id
    )

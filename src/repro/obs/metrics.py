"""The fleet metrics registry: counters, gauges, latency histograms.

Design constraints, in priority order:

* **Near-zero cost when disabled.**  Nothing in this module is imported
  on a hot path; components capture an instrument bundle (or ``None``)
  at construction time, so a disabled fleet pays one attribute load and
  an ``is None`` test per instrumented call site -- the same contract as
  the shard engine's ``emit_ratio`` hook.  The ambient switch is the
  ``REPRO_OBS`` environment variable (read once at import), overridable
  per process with :func:`set_enabled`.
* **Deterministic cross-worker merge.**  Instruments serialize to plain
  tuples (:meth:`MetricsRegistry.to_rows`) that travel over the same
  picklable-tuple codec as every other worker reply, and merging is
  integer addition bucket by bucket -- associative and commutative, so
  the merged registry is independent of worker arrival order.
  Histograms use **fixed integer-nanosecond bucket bounds** (no
  floating-point bucket math, no per-process adaptivity), which is what
  makes the merge reproducible bit for bit.
* **Determinism is declared per instrument.**  Event-count metrics
  (oracle calls, evictions, batch-size histograms) are functions of the
  ingested stream and are bit-identical across process and thread
  backends; wall-clock metrics (refresh latency, fsync latency) are
  not.  Each instrument carries a ``deterministic`` flag so
  ``to_json(deterministic_only=True)`` dumps exactly the comparable
  subset -- the surface the ``bench_obs`` CI gate diffs across
  backends.

Export surfaces are :meth:`MetricsRegistry.render_prometheus` (text
exposition format) and :meth:`MetricsRegistry.to_json` (plain dict).
Everything here is stdlib only.
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_left
from collections import deque
from typing import Iterable

__all__ = [
    "DEFAULT_NS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "set_enabled",
    "global_registry",
    "registry_if_enabled",
    "reset_global_registry",
    "merge_row_sets",
    "rows_to_json",
]

# Powers of four from ~1us to ~4.3s: 12 exact integer-nanosecond bounds
# plus the overflow bucket.  Coarse on purpose -- latency histograms are
# for "which stage ate the milliseconds", not microbenchmarking -- and
# identical in every process, which is what keeps merges deterministic.
DEFAULT_NS_BUCKETS: tuple[int, ...] = tuple(4**k for k in range(5, 17))

# Batch sizes, queue depths, replay counts: small-integer magnitudes.
COUNT_BUCKETS: tuple[int, ...] = tuple(4**k for k in range(0, 10))

# Bounded structured-event buffer per registry (lifecycle spans).
EVENT_CAPACITY = 4096

_ENV_VAR = "REPRO_OBS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled = os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Whether telemetry is on for this process (``REPRO_OBS`` or
    :func:`set_enabled`)."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip telemetry for this process; returns the previous setting.

    Components bind their instrument bundle (or ``None``) at
    construction, so flipping affects objects built *afterwards* --
    exactly the property the disabled-overhead benchmark needs: a fleet
    constructed under ``set_enabled(False)`` carries no instruments at
    all, not instruments that check a flag.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def _label_key(labels: object) -> tuple[tuple[str, str], ...]:
    if isinstance(labels, dict):
        items: Iterable = labels.items()
    else:
        items = labels or ()
    return tuple(sorted((str(k), str(v)) for k, v in items))


class Counter:
    """A monotone integer counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "deterministic", "help", "value")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        *,
        deterministic: bool = True,
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.deterministic = deterministic
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _payload(self) -> int:
        return self.value

    def _merge_payload(self, payload: int) -> None:
        self.value += payload


class Gauge:
    """A last-written numeric level (queue depth, window occupancy).

    Merging *sums* gauges: per-worker levels combine into the fleet
    level (total queue depth, total in-flight), which is the only
    order-independent choice.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "deterministic", "help", "value")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        *,
        deterministic: bool = False,
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.deterministic = deterministic
        self.help = help
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def _payload(self) -> float:
        return self.value

    def _merge_payload(self, payload: float) -> None:
        self.value += payload


class Histogram:
    """A fixed-bound histogram over non-negative integers.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one
    overflow bucket follows the last bound.  ``sum`` and ``count`` are
    exact integers, so merged histograms are bit-identical regardless
    of merge order.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "deterministic",
        "help",
        "bounds",
        "counts",
        "count",
        "sum",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        *,
        deterministic: bool = False,
        help: str = "",
        bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.deterministic = deterministic
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket (Prometheus ``le`` is inclusive).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def _payload(self) -> tuple:
        return (self.bounds, tuple(self.counts), self.count, self.sum)

    def _merge_payload(self, payload: tuple) -> None:
        bounds, counts, count, total = payload
        if tuple(bounds) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ "
                "(cannot merge histograms with mismatched buckets)"
            )
        own = self.counts
        for i, c in enumerate(counts):
            own[i] += c
        self.count += count
        self.sum += total


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process- or worker-local set of named instruments.

    Each :class:`~repro.runtime.shard.ShardGroup` (hence each parallel
    worker) owns its own registry so thread-backend workers never share
    instruments; the dispatcher pulls per-worker rows over the reply
    protocol and merges them here.  Instrument creation is idempotent
    and locked; increments are single-writer by construction (one
    worker, one registry).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}
        self.events: deque[tuple] = deque(maxlen=EVENT_CAPACITY)

    # -- instrument creation (idempotent) ---------------------------------

    def _get(self, kind: str, name: str, labels: object, kwargs: dict):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = _INSTRUMENTS[kind](key[1], key[2], **kwargs)
                    self._instruments[key] = instrument
        return instrument

    def counter(
        self,
        name: str,
        labels: object = (),
        *,
        deterministic: bool = True,
        help: str = "",
    ) -> Counter:
        return self._get(
            "counter", name, labels, {"deterministic": deterministic, "help": help}
        )

    def gauge(
        self,
        name: str,
        labels: object = (),
        *,
        deterministic: bool = False,
        help: str = "",
    ) -> Gauge:
        return self._get(
            "gauge", name, labels, {"deterministic": deterministic, "help": help}
        )

    def histogram(
        self,
        name: str,
        labels: object = (),
        *,
        deterministic: bool = False,
        help: str = "",
        bounds: tuple[int, ...] = DEFAULT_NS_BUCKETS,
    ) -> Histogram:
        return self._get(
            "histogram",
            name,
            labels,
            {"deterministic": deterministic, "help": help, "bounds": bounds},
        )

    # -- structured lifecycle events --------------------------------------

    def record_event(self, ctx_id: str, stage: str, duration_ns: int) -> None:
        """Append one span event ``(ctx_id, stage, duration_ns)`` to the
        bounded buffer (oldest events fall off)."""
        self.events.append((ctx_id, stage, duration_ns))

    def drain_events(self) -> tuple[tuple, ...]:
        """Pop and return all buffered span events."""
        drained = tuple(self.events)
        self.events.clear()
        return drained

    # -- wire rows and merging --------------------------------------------

    def to_rows(self) -> tuple[tuple, ...]:
        """Serialize to plain tuples, sorted by (name, labels, kind).

        Row shape: ``(kind, name, labels, deterministic, payload)``;
        decoders must tolerate trailing extensions (``*rest``).
        """
        rows = []
        for (kind, name, labels), instrument in self._instruments.items():
            rows.append(
                (
                    kind,
                    name,
                    labels,
                    1 if instrument.deterministic else 0,
                    instrument._payload(),
                )
            )
        rows.sort(key=lambda row: (row[1], row[2], row[0]))
        return tuple(rows)

    def merge_rows(self, rows: Iterable[tuple]) -> None:
        """Fold serialized rows into this registry (integer sums)."""
        for row in rows:
            kind, name, labels, deterministic, payload, *_rest = row
            if kind == "histogram":
                instrument = self.histogram(
                    name,
                    labels,
                    deterministic=bool(deterministic),
                    bounds=tuple(payload[0]),
                )
            elif kind == "gauge":
                instrument = self.gauge(
                    name, labels, deterministic=bool(deterministic)
                )
            elif kind == "counter":
                instrument = self.counter(
                    name, labels, deterministic=bool(deterministic)
                )
            else:
                continue  # unknown instrument kind from a newer peer
            instrument._merge_payload(payload)

    # -- export surfaces ---------------------------------------------------

    def _sorted(self):
        return sorted(
            self._instruments.values(), key=lambda i: (i.name, i.labels)
        )

    def to_json(self, *, deterministic_only: bool = False) -> dict:
        """A JSON-able dict keyed by ``name{label="v",...}``.

        With ``deterministic_only`` the dump is restricted to
        instruments declared deterministic -- the cross-backend
        comparable subset the ``bench_obs`` gate compares bit for bit.
        """
        out: dict[str, dict] = {}
        for instrument in self._sorted():
            if deterministic_only and not instrument.deterministic:
                continue
            entry: dict = {
                "kind": instrument.kind,
                "deterministic": instrument.deterministic,
            }
            if instrument.kind == "histogram":
                entry["buckets"] = [
                    [bound, count]
                    for bound, count in zip(
                        instrument.bounds, instrument.counts
                    )
                ]
                entry["overflow"] = instrument.counts[-1]
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
            else:
                entry["value"] = instrument.value
            out[_render_key(instrument.name, instrument.labels)] = entry
        return out

    def dump_json(self, *, deterministic_only: bool = False) -> str:
        """Canonical string form of :meth:`to_json` (sorted keys)."""
        return json.dumps(
            self.to_json(deterministic_only=deterministic_only),
            sort_keys=True,
            separators=(",", ":"),
        )

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: list[str] = []
        typed: set[str] = set()
        for instrument in self._sorted():
            if instrument.name not in typed:
                typed.add(instrument.name)
                if instrument.help:
                    lines.append(f"# HELP {instrument.name} {instrument.help}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if instrument.kind == "histogram":
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        _render_sample(
                            instrument.name + "_bucket",
                            instrument.labels + (("le", str(bound)),),
                            cumulative,
                        )
                    )
                lines.append(
                    _render_sample(
                        instrument.name + "_bucket",
                        instrument.labels + (("le", "+Inf"),),
                        instrument.count,
                    )
                )
                lines.append(
                    _render_sample(
                        instrument.name + "_sum",
                        instrument.labels,
                        instrument.sum,
                    )
                )
                lines.append(
                    _render_sample(
                        instrument.name + "_count",
                        instrument.labels,
                        instrument.count,
                    )
                )
            else:
                lines.append(
                    _render_sample(
                        instrument.name, instrument.labels, instrument.value
                    )
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _render_sample(
    name: str, labels: tuple[tuple[str, str], ...], value: float
) -> str:
    return f"{_render_key(name, labels)} {value}"


# -- the process-global registry (standalone components) -------------------

_global: MetricsRegistry | None = None
_global_lock = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide registry standalone components attach to.

    Shard groups (hence parallel workers) carry their *own* registries;
    this one serves components with no group to belong to -- standalone
    monitors, producer clients, the ingest server's accept loop.
    """
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                _global = MetricsRegistry()
    return _global


def registry_if_enabled() -> MetricsRegistry | None:
    """``global_registry()`` when telemetry is on, else ``None`` -- the
    one-line construction-time guard components use."""
    return global_registry() if _enabled else None


def reset_global_registry() -> None:
    """Drop the process-global registry (tests, bench A/B runs)."""
    global _global
    with _global_lock:
        _global = None


def merge_row_sets(row_sets: Iterable[Iterable[tuple]]) -> tuple[tuple, ...]:
    """Merge many serialized row sets into one, order-independently."""
    merged = MetricsRegistry()
    for rows in row_sets:
        merged.merge_rows(rows)
    return merged.to_rows()


def rows_to_json(
    rows: Iterable[tuple], *, deterministic_only: bool = False
) -> dict:
    """Decode serialized rows straight to the :meth:`to_json` shape."""
    registry = MetricsRegistry()
    registry.merge_rows(rows)
    return registry.to_json(deterministic_only=deterministic_only)

"""repro.obs: the fleet telemetry plane (stdlib only).

Metrics (:mod:`repro.obs.metrics`): a per-component
:class:`MetricsRegistry` of counters, gauges, and fixed-bucket
integer-nanosecond histograms that serialize to plain tuples, merge
deterministically across workers, and export as Prometheus text or
JSON.  Tracing (:mod:`repro.obs.trace`): :class:`TraceContext` /
:class:`Span` stage timing over the record lifecycle.

Everything is gated on ``REPRO_OBS`` (or :func:`set_enabled`): with
telemetry off, components bind ``None`` instead of instrument bundles
and the whole plane costs one attribute load per call site.

Metric naming follows ``repro_<component>_<what>[_total|_ns]``:
``_total`` for counters, ``_ns`` for nanosecond histograms, bare names
for gauges; see ``docs/architecture.md`` for the full scheme.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    global_registry,
    merge_row_sets,
    registry_if_enabled,
    reset_global_registry,
    rows_to_json,
    set_enabled,
)
from repro.obs.trace import (
    NULL_SPAN,
    STAGE_METRIC,
    STAGES,
    Span,
    TraceContext,
    new_context,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_NS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "set_enabled",
    "global_registry",
    "registry_if_enabled",
    "reset_global_registry",
    "merge_row_sets",
    "rows_to_json",
    "NULL_SPAN",
    "STAGE_METRIC",
    "STAGES",
    "Span",
    "TraceContext",
    "new_context",
]

"""Record-lifecycle tracing: spans over the ingest pipeline stages.

A :class:`TraceContext` names one producer-side stream of record
batches (``ctx_id`` is unique per process); each pipeline stage opens a
:class:`Span` around its work and closing the span does two things:

* observes the duration in the stage's latency histogram
  (``repro_stage_ns{stage=...}`` in the owning registry), and
* appends a structured event ``(ctx_id, stage, duration_ns)`` to the
  registry's bounded event buffer.

The canonical stages, in record order: ``client_encode`` (producer
builds the wire frame), ``front_accept`` (server accept loop hands the
frame to a front), ``dispatch_route`` (dispatcher shards and ships),
``worker_absorb`` (worker decodes and buffers/flushes), and
``kernel_sweep`` (the monitor's incremental ratio refresh).  Stage
histograms aggregate across contexts; the event buffer keeps the
per-context trail.

Disabled mode: :func:`new_context` returns ``None`` when telemetry is
off, and call sites hold ``NULL_SPAN`` / ``None`` so the per-call cost
is one attribute load and an ``is None`` test.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Optional

from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "STAGE_METRIC",
    "STAGES",
    "Span",
    "TraceContext",
    "NULL_SPAN",
    "new_context",
]

STAGE_METRIC = "repro_stage_ns"

STAGES = (
    "client_encode",
    "front_accept",
    "dispatch_route",
    "worker_absorb",
    "kernel_sweep",
)

_ctx_ids = itertools.count(1)


class Span:
    """One timed stage; use as a context manager or call :meth:`end`."""

    __slots__ = ("_ctx", "stage", "start_ns")

    def __init__(self, ctx: "TraceContext", stage: str) -> None:
        self._ctx = ctx
        self.stage = stage
        self.start_ns = time.perf_counter_ns()

    def end(self) -> int:
        """Close the span; returns the duration in nanoseconds."""
        duration = time.perf_counter_ns() - self.start_ns
        ctx = self._ctx
        ctx.observe(self.stage, duration)
        return duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NullSpan:
    """The disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def end(self) -> int:
        return 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class TraceContext:
    """A named span source bound to one registry.

    Caches one histogram instrument per stage so closing a span is a
    dict hit plus two integer adds.  The ``ctx_id`` stamps produce
    frames on the wire (see :mod:`repro.runtime.net.client`) so a
    dashboard can tie a producer's events back to its stream.
    """

    __slots__ = ("ctx_id", "registry", "_stage_hists")

    def __init__(self, ctx_id: str, registry: MetricsRegistry) -> None:
        self.ctx_id = ctx_id
        self.registry = registry
        self._stage_hists: dict = {}

    def span(self, stage: str) -> Span:
        return Span(self, stage)

    def observe(self, stage: str, duration_ns: int) -> None:
        """Record one finished stage duration (span-free form)."""
        hist = self._stage_hists.get(stage)
        if hist is None:
            hist = self.registry.histogram(
                STAGE_METRIC,
                (("stage", stage),),
                help="per-stage record-lifecycle latency",
            )
            self._stage_hists[stage] = hist
        hist.observe(duration_ns)
        self.registry.record_event(self.ctx_id, stage, duration_ns)

    def stamp(self) -> tuple:
        """The wire stamp appended to produce frames: ``(ctx_id,)``."""
        return (self.ctx_id,)


def new_context(
    registry: Optional[MetricsRegistry] = None, *, name: str = ""
) -> Optional[TraceContext]:
    """A fresh context on ``registry`` (default: the global registry),
    or ``None`` when telemetry is disabled."""
    if not _metrics.enabled():
        return None
    if registry is None:
        registry = _metrics.global_registry()
    suffix = f"-{name}" if name else ""
    return TraceContext(f"{os.getpid():x}.{next(_ctx_ids)}{suffix}", registry)

"""Relations between the ABC model and the other models (Sections 4-5).

* :func:`verify_theorem6` -- Theorem 6 on concrete traces: an execution
  admissible in the (static) Theta-Model is ABC-admissible for every
  ``Xi > Theta``.
* :func:`verify_theorem7_on_graph` -- Theorem 7: an ABC-admissible finite
  graph admits a normalized delay assignment whose message delays are a
  valid static Theta-Model assignment for any ``Theta > Xi`` (this is the
  engine behind the indistinguishability Theorem 9).
* :func:`abc_strictly_weaker_witness` -- the converse of Theorem 6 fails:
  an ABC-admissible execution with a zero-delay message violates (3) for
  every ``Theta``.
* :func:`play_fig8_game` -- the prover-adversary game of Section 5.1
  (Figure 8): for any adversary-chosen ``(Phi, Delta)`` the prover
  produces an execution satisfying the ABC condition for *any* ``Xi > 1``
  that cannot be modelled in ParSync with those parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.execution_graph import ExecutionGraph
from repro.core.synchrony import check_abc, worst_relevant_ratio
from repro.core.delay_assignment import normalized_assignment
from repro.models.parsync import ParSyncReport, measure_parsync
from repro.models.theta import ThetaReport, measure_theta_static
from repro.sim.trace import Trace, build_execution_graph

__all__ = [
    "Theorem6Report",
    "verify_theorem6",
    "verify_theorem7_on_graph",
    "abc_strictly_weaker_witness",
    "Fig8Outcome",
    "play_fig8_game",
]


@dataclass(frozen=True)
class Theorem6Report:
    """Outcome of checking ``M_Theta subseteq M_ABC`` on one trace."""

    theta_report: ThetaReport
    theta: float
    xi: Fraction
    theta_admissible: bool
    abc_admissible: bool

    @property
    def consistent_with_theorem6(self) -> bool:
        """Theorem 6 predicts: Theta-admissible implies ABC-admissible."""
        return (not self.theta_admissible) or self.abc_admissible


def verify_theorem6(
    trace: Trace, theta: float, xi: Fraction | int | float
) -> Theorem6Report:
    xi_frac = Fraction(xi)
    if xi_frac <= Fraction(theta).limit_denominator():
        raise ValueError("Theorem 6 needs Xi > Theta")
    report = measure_theta_static(trace)
    graph = build_execution_graph(trace)
    return Theorem6Report(
        theta_report=report,
        theta=theta,
        xi=xi_frac,
        theta_admissible=report.admissible(theta),
        abc_admissible=check_abc(graph, xi_frac).admissible,
    )


def verify_theorem7_on_graph(
    graph: ExecutionGraph, xi: Fraction | int | float
) -> tuple[bool, Fraction | None]:
    """Theorem 7 on one graph: (assignment exists, its effective Theta).

    For an ABC-admissible graph the assignment must exist and its message
    delay ratio must be strictly below ``Xi`` (hence below any
    ``Theta > Xi``, satisfying (3)).
    """
    assignment = normalized_assignment(graph, xi)
    if assignment is None:
        return False, None
    return True, assignment.message_delay_ratio(graph)


def abc_strictly_weaker_witness(trace: Trace) -> tuple[bool, ThetaReport]:
    """Whether a trace witnesses ``M_ABC not subseteq M_Theta``.

    True when the trace's execution graph is ABC-admissible for some
    ``Xi`` (finite worst ratio) while its delays violate (3) for every
    ``Theta`` (a zero-delay message among correct processes).
    """
    report = measure_theta_static(trace)
    graph = build_execution_graph(trace)
    worst = worst_relevant_ratio(graph)
    abc_ok_for_some_xi = worst is None or worst < Fraction(10**9)
    return (abc_ok_for_some_xi and report.has_zero_delay), report


@dataclass(frozen=True)
class Fig8Outcome:
    """Result of one round of the Section 5.1 prover-adversary game."""

    phi: int
    delta: int
    parsync: ParSyncReport
    worst_ratio: Fraction | None
    abc_admissible_for_any_xi: bool

    @property
    def prover_wins(self) -> bool:
        """The execution is ABC-admissible (for every ``Xi > 1``) but not
        ParSync-admissible for the adversary's ``(Phi, Delta)``."""
        return self.abc_admissible_for_any_xi and not self.parsync.admissible(
            self.phi, self.delta
        )


def play_fig8_game(trace: Trace, phi: int, delta: int) -> Fig8Outcome:
    """Evaluate a prover-provided execution against adversary parameters.

    The canonical prover strategy is built by
    :func:`repro.scenarios.figures.fig8_trace`: two processes ping-pong
    (creating only ratio-1 relevant cycles, admissible for *every*
    ``Xi > 1``) for more than ``max(Phi, Delta)`` global ticks while a
    message to a third, never-stepping process stays in transit.
    """
    graph = build_execution_graph(trace)
    worst = worst_relevant_ratio(graph)
    return Fig8Outcome(
        phi=phi,
        delta=delta,
        parsync=measure_parsync(trace),
        worst_ratio=worst,
        abc_admissible_for_any_xi=(worst is None or worst <= 1),
    )

"""Trace checkers for the remaining partially synchronous models of
Sections 1 and 5.2: Archimedean, FAR, MCM, MMR and WTL.

All of these refer to quantities the ABC model deliberately avoids
(individual delays, step times, global bounds), so the checkers are
*measurements over recorded traces*: they report the realized parameters
and whether given bounds hold.  The model-family benchmark runs them all
on the same executions to reproduce the comparison discussion of
Section 5.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.trace import Trace

__all__ = [
    "ArchimedeanReport",
    "measure_archimedean",
    "FARReport",
    "measure_far",
    "MCMReport",
    "measure_mcm",
    "mmr_holds",
    "mmr_orderings_from_rank_lists",
    "WTLReport",
    "measure_wtl",
]


# ----------------------------------------------------------------------
# Archimedean model (Vitanyi)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArchimedeanReport:
    """Realized Archimedean ratio ``s >= u / c``.

    Computing steps are zero-time in our (and the paper's) execution
    model, so the step time of a process is read as the interval between
    its consecutive receive events -- the rate at which it can observably
    act.  ``c`` is the minimum such interval over correct processes,
    ``u`` the maximum step-interval-plus-delay; ``ratio = u / c`` is the
    smallest ``s`` making the trace Archimedean-admissible, or ``None``
    when ``c = 0`` (simultaneous events), which no finite ``s`` covers.
    """

    min_step: float
    max_step_plus_delay: float
    ratio: float | None

    def admissible(self, s: float) -> bool:
        return self.ratio is not None and self.ratio <= s


def measure_archimedean(trace: Trace) -> ArchimedeanReport:
    correct = trace.correct
    steps: list[float] = []
    by_process: dict[int, list[float]] = defaultdict(list)
    for record in trace.records:
        if record.event.process in correct and record.processed:
            by_process[record.event.process].append(record.time)
    for times in by_process.values():
        steps.extend(b - a for a, b in zip(times, times[1:]))
    delays = [
        record.time - record.send_time
        for record in trace.records
        if record.sender in correct and record.send_time is not None
    ]
    if not steps or not delays:
        return ArchimedeanReport(0.0, 0.0, None)
    min_step = min(steps)
    u = max(steps) + max(delays)
    ratio = (u / min_step) if min_step > 0 else None
    return ArchimedeanReport(min_step, u, ratio)


# ----------------------------------------------------------------------
# FAR model (Fetzer, Schmid, Suesskraut)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FARReport:
    """Finite-average-response-time measurement.

    ``prefix_averages[i]`` is the average delay of the first ``i + 1``
    correct-sender messages (in send order).  The FAR model requires the
    averages to stay finite (bounded); continuously growing delays --
    which the ABC model tolerates -- drive the running average up without
    bound, which is how the model-family benchmark separates the two.
    """

    prefix_averages: tuple[float, ...]

    @property
    def final_average(self) -> float | None:
        return self.prefix_averages[-1] if self.prefix_averages else None

    @property
    def max_average(self) -> float | None:
        return max(self.prefix_averages) if self.prefix_averages else None

    def bounded_by(self, bound: float) -> bool:
        return self.max_average is not None and self.max_average <= bound


def measure_far(trace: Trace) -> FARReport:
    correct = trace.correct
    deliveries = [
        (record.send_time, record.time - record.send_time)
        for record in trace.records
        if record.sender in correct and record.send_time is not None
    ]
    deliveries.sort()
    averages: list[float] = []
    total = 0.0
    for i, (_send, delay) in enumerate(deliveries, start=1):
        total += delay
        averages.append(total / i)
    return FARReport(tuple(averages))


# ----------------------------------------------------------------------
# MCM: the message classification model (Fetzer)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MCMReport:
    """Whether a valid slow/fast classification exists.

    The MCM assumes every received message is correctly flagged slow or
    fast such that every slow delay exceeds *twice* every fast delay.  On
    a trace this holds iff the delay multiset splits at some threshold
    with ``min_slow > 2 * max_fast`` (the all-slow split is excluded:
    Fetzer requires fast round trips to exist).  ``best_gap`` is the
    largest achievable ``min_slow / max_fast`` over nonempty-fast splits.
    """

    classifiable: bool
    best_gap: float | None
    n_messages: int


def measure_mcm(trace: Trace) -> MCMReport:
    correct = trace.correct
    delays = sorted(
        record.time - record.send_time
        for record in trace.records
        if record.sender in correct and record.send_time is not None
    )
    if len(delays) < 2:
        return MCMReport(bool(delays), None, len(delays))
    best_gap = 0.0
    classifiable = False
    for i in range(len(delays) - 1):  # fast = delays[: i + 1] (nonempty)
        max_fast, min_slow = delays[i], delays[i + 1]
        if max_fast <= 0:
            continue
        gap = min_slow / max_fast
        best_gap = max(best_gap, gap)
        if min_slow > 2 * max_fast:
            classifiable = True
    return MCMReport(classifiable, best_gap if best_gap > 0 else None, len(delays))


# ----------------------------------------------------------------------
# MMR: the query-response order model (Mostefaoui, Mourgaya, Raynal)
# ----------------------------------------------------------------------


def mmr_holds(
    orderings: Sequence[Sequence[int]], n: int, f: int
) -> tuple[bool, frozenset[int]]:
    """The MMR winning-quorum condition over recorded query rounds.

    ``orderings[r]`` lists the responders of query round ``r`` in arrival
    order.  MMR requires a fixed set ``Q`` of ``f + 1`` processes whose
    responses are always among the first ``n - f`` received.  Returns the
    verdict and the set of always-fast responders.
    """
    if not orderings:
        return False, frozenset()
    always_fast: set[int] | None = None
    for ordering in orderings:
        fast = set(ordering[: n - f])
        always_fast = fast if always_fast is None else (always_fast & fast)
    assert always_fast is not None
    return len(always_fast) >= f + 1, frozenset(always_fast)


def mmr_orderings_from_rank_lists(
    rounds: Iterable[Iterable[int]],
) -> list[list[int]]:
    """Normalize iterables of responder pids into ordering lists."""
    return [list(r) for r in rounds]


# ----------------------------------------------------------------------
# WTL: weak timely links (Aguilera et al., Malkhi et al., Hutle et al.)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WTLReport:
    """Eventually timely sources found in a trace.

    For bound ``delta`` and suffix start ``after``, a link ``(p, q)`` is
    *eventually timely* when every message ``p -> q`` sent at or after
    ``after`` is delivered within ``delta``.  A correct process with at
    least ``f`` eventually timely outgoing links to distinct correct
    receivers is an (eventual) *timely f-source*; the weakest WTL models
    require one to exist.
    """

    sources: frozenset[int]
    timely_links: frozenset[tuple[int, int]]

    def has_f_source(self) -> bool:
        return bool(self.sources)


def measure_wtl(
    trace: Trace, f: int, delta: float, after: float = 0.0
) -> WTLReport:
    correct = trace.correct
    worst: dict[tuple[int, int], float] = {}
    for record in trace.records:
        if record.sender is None or record.send_time is None:
            continue
        if record.send_time < after:
            continue
        if record.sender not in correct or record.event.process not in correct:
            continue
        link = (record.sender, record.event.process)
        delay = record.time - record.send_time
        worst[link] = max(worst.get(link, 0.0), delay)
    timely = frozenset(
        link for link, delay in worst.items()
        if delay <= delta and link[0] != link[1]
    )
    sources = frozenset(
        p
        for p in correct
        if sum(1 for (src, _dst) in timely if src == p) >= f
    )
    return WTLReport(sources, timely)

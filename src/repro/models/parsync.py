"""The classic partially synchronous model of Dwork, Lynch & Stockmeyer.

ParSync stipulates a bound ``Phi`` on relative computing speeds and a
bound ``Delta`` on message delays, relative to a discrete *global clock*
that ticks whenever any process takes a step: during ``Phi`` ticks every
correct process takes at least one step, and a message sent at tick ``k``
is received by tick ``k + Delta`` (if the receiver steps).

On a recorded trace the global clock is the sequence of receive events in
delivery order.  :func:`measure_parsync` reports the realized ``Phi`` and
``Delta``; an execution can be *modelled* in ParSync with parameters
``(Phi, Delta)`` iff the realized values are below them.  Section 5.1's
separation (Figure 8): for every ``(Phi, Delta)`` there are
ABC-admissible executions whose realized values exceed both -- built in
:mod:`repro.scenarios.figures` and exercised by the Fig. 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.sim.trace import Trace

__all__ = ["ParSyncReport", "measure_parsync", "parsync_admissible"]


@dataclass(frozen=True)
class ParSyncReport:
    """Realized DLS parameters of a trace.

    Attributes:
        phi: the largest number of global ticks any correct process went
            without taking a step (within its active lifetime).
        delta: the largest number of global ticks any correct-sender
            message spent in transit.
        ticks: total number of global clock ticks (= receive events).
    """

    phi: int
    delta: int
    ticks: int

    def admissible(self, phi: int, delta: int) -> bool:
        return self.phi <= phi and self.delta <= delta


def measure_parsync(trace: Trace) -> ParSyncReport:
    correct = trace.correct
    tick_of: dict[Event, int] = {}
    last_step: dict[int, int] = {}
    max_gap = 0
    for tick, record in enumerate(trace.records, start=1):
        tick_of[record.event] = tick
        p = record.event.process
        if p in correct and record.processed:
            gap = tick - last_step.get(p, 0)
            max_gap = max(max_gap, gap)
            last_step[p] = tick
    total = len(trace.records)
    # A correct process silent from its last step to the end of the trace
    # also exhibits a gap (it "takes no step" during those ticks).
    for p in correct:
        if p in last_step:
            max_gap = max(max_gap, total - last_step[p])
        else:
            max_gap = max(max_gap, total)

    max_delta = 0
    for record in trace.records:
        if record.sender is None or record.send_event is None:
            continue
        if record.sender not in correct:
            continue
        send_tick = tick_of.get(record.send_event)
        if send_tick is None:
            continue
        max_delta = max(max_delta, tick_of[record.event] - send_tick)
    return ParSyncReport(max_gap, max_delta, total)


def parsync_admissible(trace: Trace, phi: int, delta: int) -> bool:
    """Whether the trace can be modelled in ParSync with ``(Phi, Delta)``."""
    return measure_parsync(trace).admissible(phi, delta)

"""The Theta-Model (Le Lann & Schmid; Widder & Schmid).

A message-driven model without clocks: with ``tau+(t)`` / ``tau-(t)`` the
maximum / minimum end-to-end delay of all messages from correct processes
in transit system-wide at time ``t``, the model assumes some ``Theta > 1``
with

    tau+(t) / tau-(t) <= Theta      at all times.                   (3)

The *static* variant assumes global bounds ``tau- <= delay <= tau+`` with
``tau+/tau- = Theta``; the paper's indistinguishability argument uses the
static model, which Widder & Schmid showed equivalent to the general one
from the algorithms' point of view.

This module measures both variants on recorded traces.  Together with
:func:`repro.core.synchrony.check_abc` it reproduces Theorem 6 (every
Theta-admissible execution is ABC-admissible for ``Xi > Theta``) and the
strictness examples (zero-delay ABC executions violate (3) for every
``Theta``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.sim.trace import Trace

__all__ = [
    "ThetaReport",
    "measure_theta_static",
    "measure_theta_dynamic",
    "check_theta_static",
    "check_theta_dynamic",
]


@dataclass(frozen=True)
class ThetaReport:
    """Measured delay extremes and the implied Theta of a trace.

    ``ratio`` is ``None`` when no two correct messages constrain it (or a
    zero delay makes it infinite; then ``has_zero_delay`` is set).
    """

    tau_minus: float | None
    tau_plus: float | None
    ratio: float | None
    has_zero_delay: bool
    n_messages: int

    def admissible(self, theta: float) -> bool:
        """Whether the measured execution satisfies (3) for ``theta``."""
        if self.n_messages == 0:
            return True
        if self.has_zero_delay:
            return False
        assert self.ratio is not None
        return self.ratio <= theta


def _correct_message_intervals(
    trace: Trace,
) -> list[tuple[float, float]]:
    """(send_time, receive_time) of messages between correct processes."""
    correct = trace.correct
    intervals = []
    for record in trace.records:
        if record.sender is None or record.send_time is None:
            continue
        if record.sender in correct and record.event.process in correct:
            intervals.append((record.send_time, record.time))
    return intervals


def measure_theta_static(trace: Trace) -> ThetaReport:
    """Global delay extremes over all correct-to-correct messages."""
    intervals = _correct_message_intervals(trace)
    if not intervals:
        return ThetaReport(None, None, None, False, 0)
    delays = [recv - send for send, recv in intervals]
    tau_minus, tau_plus = min(delays), max(delays)
    if tau_minus <= 0:
        return ThetaReport(tau_minus, tau_plus, None, True, len(delays))
    return ThetaReport(
        tau_minus, tau_plus, tau_plus / tau_minus, False, len(delays)
    )


def measure_theta_dynamic(trace: Trace) -> ThetaReport:
    """The supremum of ``tau+(t) / tau-(t)`` over the whole trace.

    Only instants with at least two messages simultaneously in transit
    constrain the ratio.  The maximum over a time interval between
    consecutive send/receive boundaries is attained anywhere inside it,
    so a sweep over boundary points suffices.
    """
    intervals = _correct_message_intervals(trace)
    if not intervals:
        return ThetaReport(None, None, None, False, 0)
    delays = [recv - send for send, recv in intervals]
    if min(delays) <= 0:
        return ThetaReport(min(delays), max(delays), None, True, len(delays))

    events: list[tuple[float, int, int]] = []  # (time, kind, interval idx)
    for idx, (send, recv) in enumerate(intervals):
        events.append((send, 1, idx))   # arrival into transit
        events.append((recv, 0, idx))   # departure (receive first on ties)
    events.sort()
    active: set[int] = set()
    worst_ratio = 1.0
    worst_lo: float | None = None
    worst_hi: float | None = None
    for _time, kind, idx in events:
        if kind == 1:
            active.add(idx)
            if len(active) >= 2:
                lo = min(delays[i] for i in active)
                hi = max(delays[i] for i in active)
                if hi / lo > worst_ratio:
                    worst_ratio, worst_lo, worst_hi = hi / lo, lo, hi
        else:
            active.discard(idx)
    return ThetaReport(worst_lo, worst_hi, worst_ratio, False, len(delays))


def check_theta_static(trace: Trace, theta: float | Fraction) -> bool:
    return measure_theta_static(trace).admissible(float(theta))


def check_theta_dynamic(trace: Trace, theta: float | Fraction) -> bool:
    return measure_theta_dynamic(trace).admissible(float(theta))

"""The Dolev-Dwork-Stockmeyer synchrony taxonomy (Section 5.1).

DDS classify partially synchronous models by five binary parameters:

* ``c`` -- communication synchronous (a delay bound ``Delta`` holds);
* ``p`` -- processes synchronous (a speed bound ``Phi`` holds);
* ``s`` -- steps atomic (send + receive in one step);
* ``b`` -- send steps can broadcast;
* ``m`` -- message delivery globally FIFO-ordered.

Section 5.1 embeds the ABC model at ``(c=0, p=0, s=1, b=1, m=0)`` and
notes that consensus is *not* solvable in that taxonomy entry -- the ABC
synchrony condition restricts asynchrony in a way the five parameters
cannot express, so the taxonomy necessarily over-approximates the ABC
model by full asynchrony.

Only the entries with documented provenance are encoded; querying an
unknown combination raises ``KeyError`` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaxonomyCase", "ABC_TAXONOMY_CASE", "consensus_solvable"]


@dataclass(frozen=True)
class TaxonomyCase:
    """One (c, p, s, b, m) cell of DDS Table 1."""

    c: int
    p: int
    s: int
    b: int
    m: int

    def __post_init__(self) -> None:
        for name in ("c", "p", "s", "b", "m"):
            if getattr(self, name) not in (0, 1):
                raise ValueError(f"parameter {name} must be 0 or 1")


ABC_TAXONOMY_CASE = TaxonomyCase(c=0, p=0, s=1, b=1, m=0)
"""Where Section 5.1 places the ABC model in the DDS taxonomy."""


def consensus_solvable(case: TaxonomyCase) -> bool:
    """Consensus solvability of a taxonomy cell, where documented.

    Encoded entries and their sources:

    * ``p = 1 and c = 1``: fully synchronous -- solvable (classic).
    * ``p = 0 and c = 0 and m = 0``: *all four* cells over ``(s, b)`` are
      "consensus impossible"; this is exactly the row of DDS Table 1 the
      paper quotes ("all the entries corresponding to p = 0, c = 0,
      m = 0 are the same, irrespectively of the choice of b and s").
    * ``p = 0 and c = 0 and m = 1 and s = 1 and b = 1``: solvable --
      DDS's celebrated minimal case (atomic broadcast + FIFO order
      compensates fully asynchronous processes and communication).

    Raises:
        KeyError: for combinations this reproduction does not encode.
    """
    if case.p == 1 and case.c == 1:
        return True
    if case.p == 0 and case.c == 0 and case.m == 0:
        return False
    if case == TaxonomyCase(c=0, p=0, s=1, b=1, m=1):
        return True
    raise KeyError(
        f"taxonomy entry {case} not encoded in this reproduction; see the "
        "DDS paper for the full table"
    )

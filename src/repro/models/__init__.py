"""The partially synchronous model family of Sections 1 and 5, as
measurements over recorded traces, plus the ABC-relation theorems."""

from repro.models.others import (
    ArchimedeanReport,
    FARReport,
    MCMReport,
    WTLReport,
    measure_archimedean,
    measure_far,
    measure_mcm,
    measure_wtl,
    mmr_holds,
    mmr_orderings_from_rank_lists,
)
from repro.models.parsync import (
    ParSyncReport,
    measure_parsync,
    parsync_admissible,
)
from repro.models.relations import (
    Fig8Outcome,
    Theorem6Report,
    abc_strictly_weaker_witness,
    play_fig8_game,
    verify_theorem6,
    verify_theorem7_on_graph,
)
from repro.models.taxonomy import (
    ABC_TAXONOMY_CASE,
    TaxonomyCase,
    consensus_solvable,
)
from repro.models.theta import (
    ThetaReport,
    check_theta_dynamic,
    check_theta_static,
    measure_theta_dynamic,
    measure_theta_static,
)

__all__ = [
    "ArchimedeanReport",
    "FARReport",
    "MCMReport",
    "WTLReport",
    "measure_archimedean",
    "measure_far",
    "measure_mcm",
    "measure_wtl",
    "mmr_holds",
    "mmr_orderings_from_rank_lists",
    "ParSyncReport",
    "measure_parsync",
    "parsync_admissible",
    "Fig8Outcome",
    "Theorem6Report",
    "abc_strictly_weaker_witness",
    "play_fig8_game",
    "verify_theorem6",
    "verify_theorem7_on_graph",
    "ABC_TAXONOMY_CASE",
    "TaxonomyCase",
    "consensus_solvable",
    "ThetaReport",
    "check_theta_dynamic",
    "check_theta_static",
    "measure_theta_dynamic",
    "measure_theta_static",
]

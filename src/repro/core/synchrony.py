"""The ABC synchrony condition (Definition 4) and its decision procedures.

An execution is admissible in the ABC model with parameter ``Xi > 1`` iff
every *relevant* cycle ``Z`` of its execution graph satisfies

    |Z-| / |Z+|  <  Xi.                                            (2)

"For every relevant cycle" quantifies over exponentially many subgraphs,
but the condition can be decided in polynomial time.  Build the *traversal
digraph* ``H`` over the events of ``G``:

* a message ``u -> v`` may be traversed forward (H-edge ``u -> v``) or
  backward (H-edge ``v -> u``);
* a local edge ``u -> v`` may only be traversed backward (H-edge
  ``v -> u``) -- relevant cycles have all local edges backward.

Walking a relevant cycle along its orientation is then exactly a simple
cycle in ``H``, and conversely every simple cycle of ``H`` is a relevant
cycle of ``G`` except for two degenerate shapes:

* the 2-cycle using both traversal directions of one message (not a
  shadow-graph cycle), and
* cycles whose forward messages outnumber the backward ones (Definition 3
  then forces the opposite orientation, making the local edges forward).

Both degeneracies are eliminated by weighting.  For a violation test
against ``Xi = p/q`` (``ratio >= p/q``), give each H-edge the weight

* message forward:  ``+p * M``
* message backward: ``-q * M``
* local backward:   ``-1``

with ``M = (number of local edges) + 1``.  A simple H-cycle has weight
``(p*|Z+| - q*|Z-|) * M - #locals``; since every genuine cycle contains at
least one and at most ``M - 1`` local edges, the weight is negative iff
``q*|Z-| - p*|Z+| >= 0``, i.e. iff the cycle witnesses ``ratio >= p/q``.
The degenerate 2-cycle weighs ``(p - q) * M >= 0`` and cycles with more
forward than backward messages weigh at least ``M - #locals > 0``, so
neither can be reported.  Violation detection is therefore exactly
negative-cycle detection.

:class:`AdmissibilityChecker` is the workhorse behind every public
function here: it builds the *topology* of ``H`` exactly once per
execution graph (nodes, adjacency, traversal steps) and re-derives only
the edge weights per ``(p, q)`` query, so the many oracle calls issued by
a Stern-Brocot search -- or by the online monitor of
:mod:`repro.analysis.online` -- share all of the construction work.
Negative cycles are found with an early-terminating queue-based detector
(SPFA): nodes are relaxed from a work queue seeded with every node (the
classical virtual source), the queue draining proves the absence of a
negative cycle, and a relaxation chain growing to ``n`` edges proves its
presence.  The checker is also *extendable in place* (``add_event`` /
``add_message``), which is what makes incremental monitoring cheap.

Two further mutation modes make the checker the substrate of the
ABC-*enforcing* scheduler and of the <>ABC stabilization search:

* **Speculative extension** -- :meth:`AdmissibilityChecker.checkpoint`
  records the current extent of ``H``; growing the checker past it and
  calling :meth:`AdmissibilityChecker.rollback` pops the added events
  and edges off again (all edge storage is append-only, so a rollback
  is O(delta)).  The :meth:`AdmissibilityChecker.speculate` context
  manager wraps the pair, letting a scheduler push a hypothetical
  delivery onto the live digraph, ask the oracle, and retract it
  without ever rebuilding ``H``.
* **Prefix compaction** -- :meth:`AdmissibilityChecker.compact_prefix`
  is a two-mode compaction engine over left-closed per-process prefixes
  of the observed events.  *Exact* mode (the original
  :meth:`AdmissibilityChecker.remove_prefix`) deletes the prefix
  together with every incident edge; the remaining checker answers
  queries about the *suffix* graph (the live-induced subgraph, exactly
  :func:`repro.core.variants.suffix_graph` up to event renaming).
  :meth:`AdmissibilityChecker.removable_prefix` computes the largest
  prefix whose exact removal also preserves *full-graph* queries: when
  no message (and no summary edge) crosses the prefix boundary, no
  relevant cycle spans both sides, so a prefix already known admissible
  can be dropped without changing any future oracle answer.  *Summary*
  mode removes **any** cut -- including ones messages cross -- by
  replacing the region with per-boundary-pair shortest-path
  :class:`SummaryEdge` objects.  Each summary edge stores the
  ``(forward, backward, local)`` hop profile of a realizing traversal
  walk through the region, so it re-weights exactly per ``(p, q)``
  query; per boundary pair the whole Pareto frontier of profiles is
  kept (fewer forward hops, more backward hops and more local hops are
  incomparably "better" as the query ratio varies), so the minimum walk
  weight through the region is preserved for *every* future query.
  The resulting contract is **ratio equivalence**: for every ratio
  strictly above the worst relevant ratio at compaction time, every
  oracle answer and worst-ratio refinement on the compacted digraph is
  bit-identical to the full graph's, under any extension that attaches
  only to live events.  (Cycles confined to the removed region are the
  one thing lost; they are bounded by the compaction-time worst ratio,
  which the layers above carry as a running maximum.)

On top of the oracle, :func:`worst_relevant_ratio` finds the exact maximum
``|Z-|/|Z+|`` over all relevant cycles by Stern-Brocot search: the ratio
is a fraction with numerator and denominator bounded by the message count,
so the search terminates with the exact rational.  The search clamps its
galloping probes to that denominator bound (a mediant below the current
bracket whose denominator exceeds the bound can never be the answer, so
probing it would waste a full negative-cycle run) and short-circuits
re-queries through a monotone result cache, optionally warm-started from
a ratio already known to be reached (``at_least``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.cycles import (
    AGAINST,
    ALONG,
    Cycle,
    CycleClassification,
    Step,
    classify,
    enumerate_cycles,
)
from repro.core.events import Event, ProcessId
from repro.core.execution_graph import (
    ExecutionGraph,
    LocalEdge,
    MessageEdge,
)
from repro.core.kernel import (
    Kernel,
    find_negative_cycle_edges,
    make_kernel,
    resolve_kernel_name,
)
from repro.core import kernel as _kernel_mod

__all__ = [
    "AdmissibilityChecker",
    "AdmissibilityResult",
    "CheckerCheckpoint",
    "SummaryEdge",
    "as_xi",
    "check_abc",
    "check_abc_exhaustive",
    "farey_predecessor",
    "farey_successor",
    "has_relevant_cycle_with_ratio_at_least",
    "find_violating_cycle",
    "worst_relevant_ratio",
    "worst_relevant_ratio_exhaustive",
]


@dataclass(frozen=True)
class AdmissibilityResult:
    """Outcome of an ABC admissibility check.

    Attributes:
        admissible: whether every relevant cycle satisfies (2).
        xi: the synchrony parameter the graph was checked against.
        witness: a violating relevant cycle when one exists.
    """

    admissible: bool
    xi: Fraction
    witness: CycleClassification | None = None

    def __bool__(self) -> bool:
        return self.admissible


def as_xi(xi: Fraction | float | int | str) -> Fraction:
    """Validate a synchrony parameter: the ABC model requires ``Xi > 1``.

    The single place where ``Xi`` arguments are normalized; every checker
    that accepts a ``Xi`` goes through it so that the accepted types and
    the error message stay consistent.
    """
    xi_frac = Fraction(xi)
    if xi_frac <= 1:
        raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
    return xi_frac


def _as_ratio(xi: Fraction | float | int | str) -> Fraction:
    # The hot callers (Stern-Brocot probes) always pass a Fraction
    # already; skip the re-normalizing constructor for those.
    ratio = xi if type(xi) is Fraction else Fraction(xi)
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return ratio


def farey_successor(value: Fraction, max_den: int) -> Fraction:
    """The smallest fraction above ``value`` with denominator ``<= max_den``.

    This is ``value``'s right neighbor in the Farey sequence of order
    ``max_den``: for ``value = a/b`` it is the ``c/d`` with
    ``b*c - a*d == 1`` and the largest ``d <= max_den``, found from one
    extended-gcd solution shifted by multiples of ``(a, b)``.  Any
    fraction strictly between the two has denominator ``> max_den`` --
    the arithmetic backbone of the incremental worst-ratio refresh
    (:meth:`AdmissibilityChecker.updated_worst_ratio`): a worst ratio
    that moved at all under graph extension must have reached at least
    this value.
    """
    a, b = value.numerator, value.denominator
    if b > max_den:
        raise ValueError(
            f"denominator of {value} already exceeds the bound {max_den}"
        )
    if a == 0:
        return Fraction(1, max_den)
    # Extended gcd: find (c0, d0) with b*c0 - a*d0 == 1.
    old_r, r = b, a
    old_x, x = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    assert old_r == 1, f"{value} not in lowest terms"
    c0 = old_x
    d0 = (b * c0 - 1) // a
    assert b * c0 - a * d0 == 1
    shift = (max_den - d0) // b
    return Fraction(c0 + shift * a, d0 + shift * b)


def farey_predecessor(value: Fraction, max_den: int) -> Fraction:
    """The largest fraction strictly below ``value`` with denominator
    ``<= max_den``.

    The mirror of :func:`farey_successor`, without its requirement that
    ``value`` itself lie within the denominator bound (``0/1`` always
    qualifies, so the predecessor exists for every positive ``value``).
    Found by a galloping Stern-Brocot descent; used by the ABC-enforcing
    scheduler to derive a summary-compaction floor strictly below its
    ``Xi`` that still dominates every realizable relevant-cycle ratio.
    """
    if max_den < 1:
        raise ValueError(f"max_den must be positive, got {max_den}")
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    a, b = value.numerator, value.denominator
    ln, ld = 0, 1  # lo: strictly below value
    hn, hd = 1, 0  # hi: at or above value (starts at +infinity)
    while ld + hd <= max_den:
        s = a * ld - b * ln  # > 0: how far lo sits below value
        t = b * hn - a * hd  # >= 0: how far hi sits above value
        if t == 0:
            # hi equals value exactly: every further mediant stays
            # below, so only the denominator bound limits the walk.
            k = (max_den - ld) // hd
            ln, ld = ln + k * hn, ld + k * hd
            break
        # Gallop lo towards hi while the mediant stays strictly below
        # value and within the denominator bound.
        k = (s - 1) // t
        if hd:
            k = min(k, (max_den - ld) // hd)
        if k >= 1:
            ln, ld = ln + k * hn, ld + k * hd
            continue
        # Mediant at or above value: gallop hi towards lo.
        k = t // s
        assert k >= 1
        hn, hd = hn + k * ln, hd + k * ld
    return Fraction(ln, ld)


# Edge kinds of the traversal digraph; weights per (p, q) query are
# derived from the kind, so only these tags are stored per edge.  The
# canonical definitions live in :mod:`repro.core.kernel` (the kernels
# read them without importing this module); these aliases keep the
# checker's internals spelled the way they always were.
_FWD_MESSAGE = _kernel_mod.FWD_MESSAGE
_BWD_MESSAGE = _kernel_mod.BWD_MESSAGE
_BWD_LOCAL = _kernel_mod.BWD_LOCAL
# Kinds at or above _SUMMARY are summary edges: ``kind - _SUMMARY``
# indexes the checker's deduplicated (forward, backward, local) profile
# table, so resolving any edge's per-query weight stays one table lookup
# in the detection hot loop.
_SUMMARY = _kernel_mod.SUMMARY


@dataclass(frozen=True)
class SummaryEdge:
    """A boundary-to-boundary shortest-path summary of a compacted region.

    Produced by :meth:`AdmissibilityChecker.compact_prefix` in summary
    mode: one H-edge from ``tail`` to ``head`` standing in for the
    traversal walks that used to run through the removed region.  The
    profile counts the hops of one realizing walk -- ``forward`` message
    edges traversed along their direction, ``backward`` message edges
    traversed against it, ``local`` local edges -- so the edge
    re-weights exactly for every ``(p, q)`` query as
    ``scale * (p * forward - q * backward) - local``.  ``parts`` is the
    realizing walk with *structural sharing*: a part is either a genuine
    execution-graph :class:`~repro.core.cycles.Step` or an older
    :class:`SummaryEdge` folded in whole by a later compaction.  Sharing
    keeps repeated compaction linear -- eagerly flattening the walk
    would copy O(summarized history) steps per compaction -- while
    :attr:`steps` still expands, on demand (witness extraction only),
    into the full step walk of the original execution graph.

    Pickling flattens: the structurally shared ``parts`` chain can nest
    one :class:`SummaryEdge` per compaction round, so default
    dataclass pickling would recurse once per round and overflow the
    interpreter's recursion limit on long-compacted monitors (the
    parallel runtime ships checkpoint/summary state between processes,
    where that is fatal rather than theoretical).  ``__reduce__``
    therefore serializes the *iteratively* flattened :attr:`steps`
    walk: the unpickled edge is semantically identical (same endpoints,
    profile, and realizing steps) but owns its walk flat, trading the
    structural sharing -- which only ever mattered for in-process
    compaction cost -- for bounded pickle depth.
    """

    tail: Event
    head: Event
    forward: int
    backward: int
    local: int
    parts: tuple["Step | SummaryEdge", ...]

    def __reduce__(self) -> tuple:
        return (
            SummaryEdge,
            (
                self.tail,
                self.head,
                self.forward,
                self.backward,
                self.local,
                self.steps,
            ),
        )

    @property
    def profile(self) -> tuple[int, int, int]:
        return (self.forward, self.backward, self.local)

    @property
    def steps(self) -> tuple[Step, ...]:
        """The realizing walk, flattened to genuine steps (iterative --
        compaction chains can nest summaries arbitrarily deep)."""
        out: list[Step] = []
        stack: list[Step | SummaryEdge] = list(reversed(self.parts))
        while stack:
            part = stack.pop()
            if isinstance(part, SummaryEdge):
                stack.extend(reversed(part.parts))
            else:
                out.append(part)
        return tuple(out)


@dataclass(frozen=True)
class CheckerCheckpoint:
    """An opaque marker of an :class:`AdmissibilityChecker`'s extent.

    Produced by :meth:`AdmissibilityChecker.checkpoint`, consumed by
    :meth:`AdmissibilityChecker.rollback`.  A checkpoint is invalidated
    by :meth:`AdmissibilityChecker.remove_prefix` (which renumbers the
    digraph); ``epoch`` detects that.
    """

    n_nodes: int
    n_edges: int
    n_locals: int
    epoch: int


class AdmissibilityChecker:
    """Reusable, extendable decision procedure for one execution graph.

    The traversal digraph ``H`` (see the module docstring) is built once:
    nodes, adjacency lists and the :class:`~repro.core.cycles.Step` each
    H-edge corresponds to are all independent of the ratio being tested.
    Each query then only materializes the weight of every edge from its
    kind, so a Stern-Brocot search issuing dozens of oracle calls pays the
    graph construction exactly once instead of once per call.

    The checker can also be *grown in place* -- :meth:`add_event` appends
    a receive event (creating the implied local edge), :meth:`add_message`
    a message edge -- which is the substrate of the online ?ABC/<>ABC
    monitor in :mod:`repro.analysis.online`.  Structural validity (one
    incoming message per event, digraph acyclicity) is the caller's
    responsibility when growing incrementally; events fed from a recorded
    trace or an :class:`~repro.core.execution_graph.ExecutionGraph`
    satisfy it by construction.

    Negative-cycle detection itself is delegated to a pluggable *kernel*
    (see :mod:`repro.core.kernel`): ``kernel=None`` follows the ambient
    ``REPRO_KERNEL`` environment variable (default ``py_object``, the
    reference SPFA), an explicit name pins one.  Every kernel is exact
    and bit-identical on every query surface; the choice is purely a
    speed/bookkeeping trade-off.  The kernel object itself is transient
    state -- it is dropped on pickling and lazily re-created, so
    snapshots restore under whatever kernel the restoring process
    selects (kernel-portable checkpoints).

    Attributes:
        oracle_calls: number of negative-cycle runs issued so far (for
            benchmarks and incrementality tests).
    """

    def __init__(
        self,
        graph: ExecutionGraph | None = None,
        *,
        kernel: str | None = None,
    ) -> None:
        if kernel is not None:
            resolve_kernel_name(kernel)  # fail fast on unknown names
        self._kernel_spec = kernel
        self._kernel_obj: Kernel | None = None
        self._nodes: list[Event] = []
        self._index: dict[Event, int] = {}
        self._events_per_process: dict[ProcessId, int] = {}
        # H-edges, struct-of-arrays: topology and steps are immutable per
        # edge, weights are derived per query from ``kind``.
        self._tails: list[int] = []
        self._heads: list[int] = []
        self._kinds: list[int] = []
        self._steps: list[Step] = []
        # node index -> [(head, kind), ...]; the detection hot loop reads
        # only this, with weights resolved through a 3-entry table.
        self._adj: list[list[tuple[int, int]]] = []
        self._messages: set[MessageEdge] = set()
        self._n_locals = 0
        # Tombstoning state: first still-live event index per process and
        # the compaction epoch (checkpoints from older epochs are dead).
        self._first_live: dict[ProcessId, int] = {}
        self._n_tombstoned = 0
        self._epoch = 0
        # Summary-compaction state: the deduplicated (forward, backward,
        # local) profile table indexed by ``kind - _SUMMARY``, plus the
        # running totals that keep the weighting scale and the
        # Stern-Brocot ratio bound valid with summaries in the digraph.
        self._summary_profiles: list[tuple[int, int, int]] = []
        self._profile_ids: dict[tuple[int, int, int], int] = {}
        self._n_summaries = 0
        self._summary_locals = 0  # sum of `local` over live summary edges
        self._summary_hops = 0  # sum of max(fwd, bwd) over live summaries
        self._speculating = 0
        self.oracle_calls = 0
        if graph is not None:
            for process in graph.processes:
                for event in graph.events_of(process):
                    self.add_event(event)
            for message in graph.messages:
                self.add_message(message.src, message.dst)

    # ------------------------------------------------------------------
    # kernel selection
    # ------------------------------------------------------------------

    @property
    def _kernel(self) -> Kernel:
        """The bound detection kernel, created lazily (and re-created
        lazily after unpickling or :meth:`set_kernel`)."""
        obj = self._kernel_obj
        if obj is None:
            obj = self._kernel_obj = make_kernel(self._kernel_spec, self)
        return obj

    @property
    def kernel_name(self) -> str:
        """The kernel this checker resolves to right now (an unpinned
        checker follows the ``REPRO_KERNEL`` environment variable)."""
        if self._kernel_obj is not None:
            return self._kernel_obj.name
        return resolve_kernel_name(self._kernel_spec)

    def set_kernel(self, kernel: str | None) -> None:
        """Re-pin the detection kernel (``None`` = follow the ambient
        environment); any cached kernel state is discarded.  Purely a
        strategy switch -- every subsequent answer is bit-identical to
        what any other kernel would produce."""
        if kernel is not None:
            resolve_kernel_name(kernel)
        self._kernel_spec = kernel
        self._kernel_obj = None

    def __getstate__(self) -> dict:
        # The kernel object is transient (it may hold module references
        # and derived caches); drop it so snapshots are kernel-portable
        # and the restoring process re-resolves lazily.
        state = self.__dict__.copy()
        state["_kernel_obj"] = None
        return state

    # ------------------------------------------------------------------
    # incremental construction
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        """Number of *live* (non-tombstoned) events in the digraph."""
        return len(self._nodes)

    @property
    def n_messages(self) -> int:
        """Number of live message edges."""
        return len(self._messages)

    @property
    def n_local_edges(self) -> int:
        return self._n_locals

    @property
    def n_tombstoned(self) -> int:
        """Number of events removed by :meth:`compact_prefix` (either
        mode) so far."""
        return self._n_tombstoned

    @property
    def n_summary_edges(self) -> int:
        """Number of live summary edges (see :class:`SummaryEdge`)."""
        return self._n_summaries

    @property
    def ratio_bound(self) -> int:
        """Bound on the numerator and denominator of every realizable
        relevant-cycle ratio.

        A simple cycle traverses each live message edge at most once and
        each summary edge at most once, so its forward and backward hop
        counts are bounded by the live message count plus the hops
        folded into summaries.  This is the denominator bound of the
        Stern-Brocot search and of the Farey-successor refresh; without
        summaries it reduces to the classical message-count bound.
        """
        return max(1, len(self._messages) + self._summary_hops)

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        """Processes with at least one observed event (live or not)."""
        return tuple(self._events_per_process)

    def n_events_of(self, process: ProcessId) -> int:
        """Total events ever observed at ``process`` (tombstoned ones
        included -- this is the index the next :meth:`add_event` must
        carry, and the basis of :meth:`extends`)."""
        return self._events_per_process.get(process, 0)

    def first_live_index(self, process: ProcessId) -> int:
        """Index of the earliest non-tombstoned event at ``process``."""
        return self._first_live.get(process, 0)

    @property
    def messages(self) -> frozenset[MessageEdge]:
        """The message edges added so far (snapshot)."""
        return frozenset(self._messages)

    def has_message(self, message: MessageEdge) -> bool:
        return message in self._messages

    def add_event(self, event: Event) -> None:
        """Append the next receive event of its process.

        Events of one process must arrive in local order (index 0, 1, ...);
        the local edge from the previous event is created implicitly, as a
        backward-only H-edge.
        """
        expected = self._events_per_process.get(event.process, 0)
        if event.index != expected:
            raise ValueError(
                f"events of process {event.process} must arrive in local "
                f"order: expected index {expected}, got {event!r}"
            )
        self._events_per_process[event.process] = expected + 1
        self._index[event] = len(self._nodes)
        self._nodes.append(event)
        self._adj.append([])
        if event.index > 0:
            prev = Event(event.process, event.index - 1)
            prev_id = self._index.get(prev)
            # A tombstoned predecessor leaves the new event without a
            # local edge, exactly as in the suffix graph.
            if prev_id is not None:
                self._add_h_edge(
                    self._index[event],
                    prev_id,
                    _BWD_LOCAL,
                    Step(LocalEdge(prev, event), AGAINST),
                )
                self._n_locals += 1

    def add_message(self, src: Event, dst: Event) -> bool:
        """Add a message edge; returns ``False`` for an exact duplicate.

        Duplicates are dropped to match
        :class:`~repro.core.execution_graph.ExecutionGraph`, which stores
        messages as a set.
        """
        message = MessageEdge(src, dst)
        if message in self._messages:
            return False
        for endpoint in (src, dst):
            if endpoint not in self._index:
                raise KeyError(
                    f"event {endpoint!r} not in the checker (never added, "
                    "or tombstoned)"
                )
        if src == dst:
            raise ValueError(f"message {message!r} may not be a self loop")
        self._messages.add(message)
        u, v = self._index[src], self._index[dst]
        self._add_h_edge(u, v, _FWD_MESSAGE, Step(message, ALONG))
        self._add_h_edge(v, u, _BWD_MESSAGE, Step(message, AGAINST))
        return True

    def absorb_batch(
        self,
        events: tuple[Sequence[ProcessId], Sequence[int]],
        messages: Sequence[tuple[ProcessId, int] | None] | None = None,
    ) -> int:
        """Bulk-append a batch of events (and their triggering messages).

        The columnar twin of a per-record :meth:`add_event` /
        :meth:`add_message` loop, for the zero-object ingest path:

        * ``events`` is a pair of parallel columns ``(processes,
          indexes)`` -- row ``k`` is the next receive event of
          ``processes[k]``, in arrival order.
        * ``messages``, when given, is a column *aligned with the
          events*: entry ``k`` is ``None`` (wake-up / filtered message)
          or ``(src_process, src_index)``, the send event whose message
          triggered event ``k``.  The destination is always event ``k``
          itself -- exactly the shape of a receive-record stream.

        Semantics are bit-identical to the per-record loop, including
        H-edge insertion order (event ``k``'s local edge, then event
        ``k``'s message edges) -- the negative-cycle witness the kernels
        report depends on edge order, so the interleaving is part of the
        contract.  Local-order violations are detected in a validation
        pre-pass over the whole batch *before any mutation*, so a bad
        event column leaves the checker untouched; message errors
        (unknown endpoint, self loop) surface mid-apply exactly as they
        would mid-stream.  Exact duplicate messages are dropped, as in
        :meth:`add_message`.

        Appends happen on the flat digraph arrays once per batch; any
        attached kernel discovers them lazily (one ``extend``) at the
        next oracle probe.  Returns the number of message edges added.
        """
        processes, indexes = events
        n = len(processes)
        if len(indexes) != n or (messages is not None and len(messages) != n):
            raise ValueError(
                "absorb_batch columns must have equal lengths: "
                f"{n} processes, {len(indexes)} indexes"
                + (
                    f", {len(messages)} messages"
                    if messages is not None
                    else ""
                )
            )
        # Validation pre-pass: local order per process across the batch,
        # seeded from the observed prefix.  Nothing is mutated before
        # the whole event column is known good.
        epp = self._events_per_process
        expected: dict[ProcessId, int] = {}
        for k in range(n):
            p = processes[k]
            want = expected.get(p)
            if want is None:
                want = epp.get(p, 0)
            if indexes[k] != want:
                bad = Event.__new__(Event)
                bad.__dict__["process"] = p
                bad.__dict__["index"] = indexes[k]
                raise ValueError(
                    f"events of process {p} must arrive in local "
                    f"order: expected index {want}, got {bad!r}"
                )
            expected[p] = want + 1
        # Fused apply pass, locals bound once.  Every object on this
        # path -- events, edges, traversal steps -- is built from
        # values the validation pre-pass (or the digraph itself)
        # already vouched for, so the frozen dataclasses are
        # fast-constructed via ``__new__`` + direct ``__dict__``
        # stores, skipping checked ``__init__``/``__post_init__``
        # exactly as the wire decoder does.  Equality and hash derive
        # from the fields, so the instances are indistinguishable from
        # per-record ones.
        #
        # Two batch-local shortcuts the per-record loop cannot take:
        #
        # * ``batch_ids`` maps the batch's own ``(process, index)``
        #   pairs to node ids with C-speed tuple hashing, so local
        #   predecessors and (in dense streams, nearly all) message
        #   sources resolve without constructing a probe ``Event`` or
        #   paying its Python-level ``__hash__``.
        # * The duplicate-message check of :meth:`add_message` is
        #   skipped outright: row ``k``'s destination is row ``k``'s
        #   *own just-appended event* -- validation guarantees it is
        #   new -- so no message to it can already exist.  Self loops
        #   reduce to ``src_id == node_id`` for the same reason.
        epp.update(expected)
        nodes = self._nodes
        index = self._index
        adj = self._adj
        tails = self._tails
        heads = self._heads
        kinds = self._kinds
        steps = self._steps
        msgs = self._messages
        new_event = Event.__new__
        new_step = Step.__new__
        new_local = LocalEdge.__new__
        new_message = MessageEdge.__new__
        batch_ids: dict[tuple[ProcessId, int], int] = {}
        batch_hit = batch_ids.get
        added = 0
        for k in range(n):
            p = processes[k]
            i = indexes[k]
            event = new_event(Event)
            event.__dict__["process"] = p
            event.__dict__["index"] = i
            node_id = len(nodes)
            index[event] = node_id
            batch_ids[(p, i)] = node_id
            nodes.append(event)
            adj.append([])
            if i > 0:
                prev_id = batch_hit((p, i - 1))
                if prev_id is not None:
                    prev = nodes[prev_id]
                else:
                    prev = new_event(Event)
                    prev.__dict__["process"] = p
                    prev.__dict__["index"] = i - 1
                    prev_id = index.get(prev)
                # A tombstoned predecessor leaves the new event without
                # a local edge, exactly as in add_event.
                if prev_id is not None:
                    edge = new_local(LocalEdge)
                    edge.__dict__["src"] = prev
                    edge.__dict__["dst"] = event
                    step = new_step(Step)
                    step.__dict__["edge"] = edge
                    step.__dict__["direction"] = AGAINST
                    tails.append(node_id)
                    heads.append(prev_id)
                    kinds.append(_BWD_LOCAL)
                    steps.append(step)
                    adj[node_id].append((prev_id, _BWD_LOCAL))
                    self._n_locals += 1
            if messages is None:
                continue
            origin = messages[k]
            if origin is None:
                continue
            src_id = batch_hit(origin)
            if src_id is not None:
                src = nodes[src_id]
            else:
                src = new_event(Event)
                src.__dict__["process"] = origin[0]
                src.__dict__["index"] = origin[1]
                src_id = index.get(src)
                if src_id is None:
                    raise KeyError(
                        f"event {src!r} not in the checker (never "
                        "added, or tombstoned)"
                    )
            message = new_message(MessageEdge)
            message.__dict__["src"] = src
            message.__dict__["dst"] = event
            if src_id == node_id:
                raise ValueError(
                    f"message {message!r} may not be a self loop"
                )
            msgs.add(message)
            fwd = new_step(Step)
            fwd.__dict__["edge"] = message
            fwd.__dict__["direction"] = ALONG
            bwd = new_step(Step)
            bwd.__dict__["edge"] = message
            bwd.__dict__["direction"] = AGAINST
            tails.append(src_id)
            heads.append(node_id)
            kinds.append(_FWD_MESSAGE)
            steps.append(fwd)
            adj[src_id].append((node_id, _FWD_MESSAGE))
            tails.append(node_id)
            heads.append(src_id)
            kinds.append(_BWD_MESSAGE)
            steps.append(bwd)
            adj[node_id].append((src_id, _BWD_MESSAGE))
            added += 1
        return added

    def extends(self, graph: ExecutionGraph) -> bool:
        """Whether ``graph`` extends the prefix this checker has seen
        (at least as many events per process, a superset of messages)."""
        for process in self.processes:
            if len(graph.events_of(process)) < self.n_events_of(process):
                return False
        if self._messages:
            if not self._messages <= set(graph.messages):
                return False
        return True

    def absorb(self, graph: ExecutionGraph) -> bool:
        """Add everything ``graph`` has beyond the observed prefix.

        ``graph`` must satisfy :meth:`extends`.  Returns whether any
        message edge was added -- only then can new relevant cycles have
        appeared, so only then is a worst-ratio refresh needed.
        """
        for process in graph.processes:
            known = self.n_events_of(process)
            for event in graph.events_of(process)[known:]:
                self.add_event(event)
        added = False
        for message in graph.messages:
            if message in self._messages:
                continue
            # Messages whose endpoint lies in a tombstoned prefix were
            # forgotten deliberately -- not new edges to absorb.
            if (
                message.src.index < self.first_live_index(message.src.process)
                or message.dst.index < self.first_live_index(message.dst.process)
            ):
                continue
            self.add_message(message.src, message.dst)
            added = True
        return added

    def updated_worst_ratio(
        self, previous: Fraction | None
    ) -> Fraction | None:
        """The exact worst relevant ratio, given the exact worst
        ``previous`` of a subgraph of the current graph.

        Fast path of the incremental monitor: under extension the worst
        ratio either stayed at ``previous`` or reached at least its
        Farey successor under the current denominator bound, so one
        oracle call usually settles it; only an actual increase -- at
        most ``O(max_den^2)`` times ever, in practice a handful -- pays
        a warm-started Stern-Brocot search.
        """
        if previous is None:
            if not self.has_ratio_at_least(1):
                return None
            return self.worst_relevant_ratio(at_least=Fraction(1))
        max_den = self.ratio_bound
        if previous.denominator > max_den:
            # Only after tombstoning: the live suffix has fewer messages
            # than the prefix that realized ``previous``.  No Farey warm
            # start exists within the new bound; the suffix search is
            # cheap (few messages) and the running maximum keeps
            # ``previous``.
            current = self.worst_relevant_ratio()
            return current if current is not None and current > previous else previous
        successor = farey_successor(previous, max_den)
        # Inline the has_ratio_at_least probe: ``successor > previous >=
        # 1`` already, so the clamp and re-normalization there are pure
        # overhead on what is by far the most frequent oracle call of
        # the online monitor (one probe per batch that changed nothing).
        self.oracle_calls += 1
        if not self._has_negative_cycle(
            successor.numerator, successor.denominator
        ):
            return previous
        return self.worst_relevant_ratio(at_least=successor)

    def _add_h_edge(self, tail: int, head: int, kind: int, step: Step) -> None:
        self._tails.append(tail)
        self._heads.append(head)
        self._kinds.append(kind)
        self._steps.append(step)
        self._adj[tail].append((head, kind))

    # ------------------------------------------------------------------
    # speculative extension (checkpoint / rollback)
    # ------------------------------------------------------------------

    def checkpoint(self) -> CheckerCheckpoint:
        """Record the current extent of ``H`` for a later :meth:`rollback`.

        Checkpoints nest (roll back in reverse order of creation) and are
        O(1): all edge storage is append-only, so the extent is four
        integers.  A checkpoint does not survive :meth:`remove_prefix`,
        which renumbers the digraph.
        """
        return CheckerCheckpoint(
            len(self._nodes), len(self._tails), self._n_locals, self._epoch
        )

    def rollback(self, token: CheckerCheckpoint) -> None:
        """Pop every event and edge added since ``token`` off the digraph.

        Restores the checker to the checkpointed state exactly (same
        nodes, adjacency, message set, local-edge count -- and therefore
        the same answer to every query); only ``oracle_calls`` keeps
        counting across rollbacks.  O(number of popped events + edges).
        """
        if token.epoch != self._epoch:
            raise ValueError(
                "checkpoint predates a remove_prefix; the digraph was "
                "renumbered and cannot be rolled back to it"
            )
        if token.n_nodes > len(self._nodes) or token.n_edges > len(self._tails):
            raise ValueError("cannot roll back to a future checkpoint")
        for eidx in range(len(self._tails) - 1, token.n_edges - 1, -1):
            tail = self._tails[eidx]
            kind = self._kinds[eidx]
            popped = self._adj[tail].pop()
            # Structural invariant checked eagerly (not via assert, which
            # ``python -O`` strips): a mismatch means the digraph is
            # corrupt and must not be used further.
            if popped != (self._heads[eidx], kind):
                raise RuntimeError(
                    f"rollback found adjacency tail {popped} where edge "
                    f"{eidx} -> {(self._heads[eidx], kind)} was expected; "
                    "the digraph is corrupt"
                )
            if kind == _FWD_MESSAGE:
                self._messages.remove(self._steps[eidx].edge)
        del self._tails[token.n_edges :]
        del self._heads[token.n_edges :]
        del self._kinds[token.n_edges :]
        del self._steps[token.n_edges :]
        self._n_locals = token.n_locals
        for _ in range(len(self._nodes) - token.n_nodes):
            event = self._nodes.pop()
            del self._index[event]
            leftover = self._adj.pop()
            if leftover:
                raise RuntimeError(
                    f"rollback popped node {event!r} with {len(leftover)} "
                    "outgoing edges still attached; the digraph is corrupt"
                )
            remaining = self._events_per_process[event.process] - 1
            if remaining:
                self._events_per_process[event.process] = remaining
            else:
                del self._events_per_process[event.process]
        if self._kernel_obj is not None:
            self._kernel_obj.notify_rollback(token.n_nodes, token.n_edges)

    @contextmanager
    def speculate(self) -> Iterator["AdmissibilityChecker"]:
        """Context manager bracketing a speculative extension.

        Within the block the checker may be grown freely (``add_event``,
        ``add_message``) and queried; on exit everything added is popped
        off again.  This is what lets the ABC-enforcing scheduler push a
        hypothetical delivery onto the live digraph, ask the oracle, and
        retract it without a rebuild.  :meth:`remove_prefix` is rejected
        inside a speculation.
        """
        token = self.checkpoint()
        self._speculating += 1
        try:
            yield self
        finally:
            self._speculating -= 1
            self.rollback(token)

    # ------------------------------------------------------------------
    # prefix compaction (the two-mode engine)
    # ------------------------------------------------------------------

    def remove_prefix(self, events: Iterable[Event]) -> int:
        """Exact-mode prefix removal (the original tombstoning API).

        Equivalent to ``compact_prefix(events, mode="exact")``; see
        there for the shared prefix discipline and for the summary mode
        that makes message-crossing cuts removable.
        """
        return self.compact_prefix(events, mode="exact")

    def compact_prefix(
        self,
        events: Iterable[Event],
        mode: str = "summary",
        floor: Fraction | None = None,
    ) -> int:
        """Compact a left-closed per-process prefix out of the digraph.

        ``events`` must, per process, extend the already-compacted
        prefix contiguously (events already compacted are ignored, so
        passing a cumulatively grown cut is fine).  Arrays are compacted
        eagerly, so memory is bounded by the live graph plus the summary
        edges; returns the number of events removed.  Two modes:

        * ``mode="exact"`` removes the events together with *every*
          incident edge -- the remaining digraph is the live-induced
          subgraph, i.e. queries now answer for the suffix graph beyond
          the prefix (the semantics of
          :func:`repro.core.variants.suffix_graph`, without
          re-indexing).  To remove a prefix *without* changing
          full-graph answers, pick one with :meth:`removable_prefix`
          (no message and no summary edge may cross it).
        * ``mode="summary"`` removes any cut -- messages may cross it --
          and replaces the region with boundary-to-boundary
          :class:`SummaryEdge` objects (the Pareto frontier of
          ``(forward, backward, local)`` walk profiles per boundary
          pair), preserving the weight of every traversal walk through
          the region for every future ``(p, q)`` query.  Afterwards
          every query at a ratio strictly above the compaction-time
          worst relevant ratio is bit-identical to the full graph's,
          under any extension attaching only to live events; cycles
          confined to the region are the one loss, and they are bounded
          by that compaction-time worst (carry it as a running
          maximum, as :class:`repro.analysis.online.OnlineAbcMonitor`
          does).  Each process's frontier (last live) event is
          implicitly pinned so future local edges still attach to live
          events; use :meth:`summarizable_prefix` to enumerate the
          compactable cut, pinning the send events of in-flight
          messages for extension exactness.

        ``floor`` tunes how much summary mode must preserve.  ``None``
        (the default) keeps every query at every ratio ``>= 1`` exact
        for cycles touching live events.  A ``Fraction`` promises the
        caller will never need exactness at ratios ``<= floor`` (it
        answers those from a running maximum, or never asks): the
        Pareto frontiers are then pruned for ratios strictly above
        ``floor`` only, which provably cuts off walks looping region
        cycles of ratio ``<= floor`` -- the difference between
        region-bounded and unbounded compaction cost on workloads whose
        settled past contains relevant cycles.  Callers with a running
        worst ratio should pass it; the enforcing scheduler passes
        ``farey_predecessor(xi, ratio_bound)``.

        Both modes renumber the digraph: checkpoints are invalidated
        (epoch-guarded) and the call is rejected inside
        :meth:`speculate`.
        """
        if mode not in ("exact", "summary"):
            raise ValueError(f"unknown compaction mode {mode!r}")
        if self._speculating:
            raise RuntimeError("cannot compact a prefix inside speculate()")
        new_first: dict[ProcessId, list[int]] = {}
        for event in events:
            new_first.setdefault(event.process, []).append(event.index)
        stops: dict[ProcessId, int] = {}
        for process, indices in new_first.items():
            total = self._events_per_process.get(process, 0)
            first = self._first_live.get(process, 0)
            fresh = sorted(i for i in set(indices) if i >= first)
            if not fresh:
                continue
            if fresh[-1] >= total:
                raise KeyError(
                    f"event p{process}:{fresh[-1]} was never added to the "
                    "checker"
                )
            if fresh != list(range(first, first + len(fresh))):
                raise ValueError(
                    f"tombstoned events of process {process} must extend "
                    f"the removed prefix contiguously from index {first}"
                )
            stop = first + len(fresh)
            if mode == "summary":
                # Keep the frontier event live: the next add_event at
                # this process attaches its local edge there, which the
                # ratio-equivalence contract under extension needs.
                stop = min(stop, total - 1)
            if stop > first:
                stops[process] = stop
        if not stops:
            return 0
        dead: set[int] = set()
        for process, stop in stops.items():
            for index in range(self._first_live.get(process, 0), stop):
                dead.add(self._index[Event(process, index)])
            self._first_live[process] = stop
        summaries = (
            self._summarize_region(dead, floor) if mode == "summary" else ()
        )
        self._compact(dead)
        for edge in summaries:
            self._attach_summary(edge)
        self._n_tombstoned += len(dead)
        return len(dead)

    def _edge_hops(self, kind: int) -> tuple[int, int, int]:
        """The (forward, backward, local) hop profile of one H-edge."""
        if kind == _FWD_MESSAGE:
            return (1, 0, 0)
        if kind == _BWD_MESSAGE:
            return (0, 1, 0)
        if kind == _BWD_LOCAL:
            return (0, 0, 1)
        return self._summary_profiles[kind - _SUMMARY]

    def _edge_part(self, eidx: int) -> "Step | SummaryEdge":
        """One H-edge as a walk part: its step, or the whole summary
        (shared, not flattened -- see :attr:`SummaryEdge.parts`)."""
        return self._steps[eidx]

    def _attach_summary(self, edge: SummaryEdge) -> None:
        key = edge.profile
        pid = self._profile_ids.get(key)
        if pid is None:
            pid = len(self._summary_profiles)
            self._summary_profiles.append(key)
            self._profile_ids[key] = pid
        self._add_h_edge(
            self._index[edge.tail], self._index[edge.head], _SUMMARY + pid, edge
        )
        self._n_summaries += 1
        self._summary_locals += edge.local
        self._summary_hops += max(edge.forward, edge.backward)

    def _live_summaries(self) -> Iterator[SummaryEdge]:
        for eidx, kind in enumerate(self._kinds):
            if kind >= _SUMMARY:
                yield self._steps[eidx]

    def _summarize_region(
        self, dead: set[int], floor: Fraction | None
    ) -> list[SummaryEdge]:
        """Pareto shortest-path summaries of the region about to die.

        For every live *boundary* node ``x`` with an H-edge into the
        region, a label-correcting search (the SPFA discipline of the
        oracle, run on hop profiles instead of one scalar weight)
        explores traversal walks through region nodes only, recording at
        every live exit node ``y`` the Pareto frontier of reachable
        ``(forward, backward, local)`` profiles.  The per-query weight
        is ``scale * (p * f - q * b) - l`` with ``(p, q)`` unknown at
        compaction time; over the query range the caller needs
        (``p/q >= 1`` for ``floor=None``, ``p/q > floor = a/c``
        otherwise) a profile ``x`` dominates ``y`` iff

            ``f_x <= f_y``  and  ``a * (f_x - f_y) <= c * (b_x - b_y)``

        with a local-hop tie-break (``l_x >= l_y``) required exactly
        where the weight difference can vanish: at equal ``f`` and
        ``b`` for a strict floor, additionally at
        ``a * df == c * db`` for the inclusive default.  The floored
        order prunes every walk that loops a region cycle of ratio
        ``<= floor`` -- such loops only improve queries at or below the
        floor -- keeping the label space region-bounded even when the
        settled past is full of relevant cycles.

        Caps bound the search without touching exactness, derived from
        the fact that only *simple* walks through the region need
        covering (genuine relevant cycles are simple; a walk label may
        loop, but every label some simple path needs must survive).  A
        label is always cut off when its forward hops exceed the sum of
        the ``|region| + 1`` largest per-edge forward capacities.  In
        the *inclusive* mode only -- where the weight order cannot
        prune loop staircases around region cycles -- a label is
        additionally cut off when its *hop count* (edges traversed, an
        old summary counting as one) exceeds ``|region| + 1``: a simple
        walk uses each edge at most once and at most that many overall.
        The hop count then joins the dominance order (a label only
        dominates labels with at least as many hops), which is what
        lets the coverage induction survive the cap: a covering label
        never has more hops than the simple walk it covers, so its
        extensions are never the ones discarded.  The floored mode
        leaves hops out entirely: its weight order already prunes every
        loop of ratio ``<= floor``, and the extra coordinate would only
        fracture the frontier into hop-distinct duplicates.  Finished
        entry-to-exit walks are re-pruned by weight alone either way --
        a walk's hop count is invisible to every future query.  Older
        summary edges with an endpoint in the region participate with
        their stored profiles and are folded into the new walks, so
        repeated compaction never loses structure.
        """
        entries: dict[int, list[int]] = {}  # live tail -> edges into region
        internal: dict[int, list[int]] = {}  # region tail -> region edges
        exits: dict[int, list[int]] = {}  # region tail -> edges out to live
        forward_caps: list[int] = []
        for eidx in range(len(self._tails)):
            tail_dead = self._tails[eidx] in dead
            head_dead = self._heads[eidx] in dead
            if not tail_dead and not head_dead:
                continue
            forward_caps.append(self._edge_hops(self._kinds[eidx])[0])
            if tail_dead and head_dead:
                internal.setdefault(self._tails[eidx], []).append(eidx)
            elif head_dead:
                entries.setdefault(self._tails[eidx], []).append(eidx)
            else:
                exits.setdefault(self._tails[eidx], []).append(eidx)
        # A simple walk through the region uses each edge at most once
        # and at most |region| + 1 edges in total.
        forward_caps.sort(reverse=True)
        f_cap = sum(forward_caps[: len(dead) + 1])
        if floor is None:
            fa, fc, strict = 1, 1, False
        else:
            fa, fc, strict = floor.numerator, floor.denominator, True
        # The hop cap exists for the inclusive mode's termination; the
        # floored order prunes loops by weight and must not fracture
        # its frontier into hop-distinct duplicates (see docstring).
        use_hops = not strict
        h_cap = len(dead) + 1
        out: list[SummaryEdge] = []
        for x, seed_edges in entries.items():
            # Labels are (f, b, l, h, parent label | None, eidx); the
            # parent chain reconstructs the realizing walk.
            frontier: dict[int, list[tuple]] = {}
            results: dict[int, list[tuple]] = {}
            work: list[tuple[int, tuple]] = []

            def dominates(x_lab: tuple, y_lab: tuple, hops: bool = use_hops) -> bool:
                if hops and x_lab[3] > y_lab[3]:
                    return False  # more hops: the coverage induction
                df = x_lab[0] - y_lab[0]  # needs extensions of y too
                db = x_lab[1] - y_lab[1]
                if df > 0 or fa * df > fc * db:
                    return False
                if strict:
                    tie = df == 0 and db == 0
                else:
                    tie = fa * df == fc * db
                return not tie or x_lab[2] >= y_lab[2]

            def offer(
                store: dict[int, list[tuple]], node: int, label: tuple
            ) -> bool:
                labels = store.setdefault(node, [])
                for o in labels:
                    if dominates(o, label):
                        return False  # dominated (or duplicate)
                labels[:] = [o for o in labels if not dominates(label, o)]
                labels.append(label)
                return True

            def relax(node_label: tuple, eidx: int) -> tuple | None:
                nh = node_label[3] + 1
                if use_hops and nh > h_cap:
                    return None
                df, db, dl = self._edge_hops(self._kinds[eidx])
                nf = node_label[0] + df
                if nf > f_cap:
                    return None
                return (
                    nf,
                    node_label[1] + db,
                    node_label[2] + dl,
                    nh,
                    node_label,
                    eidx,
                )

            for eidx in seed_edges:
                label = relax((0, 0, 0, 0, None, -1), eidx)
                if label is not None and offer(
                    frontier, self._heads[eidx], label
                ):
                    work.append((self._heads[eidx], label))
            while work:
                node, label = work.pop()
                for eidx in internal.get(node, ()):
                    nxt = relax(label, eidx)
                    if nxt is not None and offer(
                        frontier, self._heads[eidx], nxt
                    ):
                        work.append((self._heads[eidx], nxt))
                for eidx in exits.get(node, ()):
                    nxt = relax(label, eidx)
                    if nxt is not None:
                        offer(results, self._heads[eidx], nxt)
            x_event = self._nodes[x]
            for y, labels in results.items():
                y_event = self._nodes[y]
                # The hop coordinate protected the in-region coverage
                # induction; a *finished* walk's hop count is invisible
                # to every future query, so re-prune the terminal set by
                # weight alone -- otherwise hop-distinct but
                # weight-dominated siblings survive as pure-overhead
                # parallel summary edges.
                pruned: list[tuple] = []
                for label in labels:
                    if any(dominates(o, label, hops=False) for o in pruned):
                        continue
                    pruned[:] = [
                        o for o in pruned if not dominates(label, o, hops=False)
                    ]
                    pruned.append(label)
                for label in pruned:
                    chain: list[int] = []
                    cursor: tuple | None = label
                    while cursor is not None and cursor[5] >= 0:
                        chain.append(cursor[5])
                        cursor = cursor[4]
                    chain.reverse()
                    out.append(
                        SummaryEdge(
                            tail=x_event,
                            head=y_event,
                            forward=label[0],
                            backward=label[1],
                            local=label[2],
                            parts=tuple(
                                self._edge_part(eidx) for eidx in chain
                            ),
                        )
                    )
        return out

    def summarizable_prefix(
        self, pinned: Iterable[Event] = ()
    ) -> tuple[Event, ...]:
        """The largest cut summary compaction may absorb.

        Every live event strictly below the pinned ones, with each
        process's frontier (last live) event implicitly pinned --
        future local edges must attach to live events for the
        ratio-equivalence contract to cover extensions.  Callers whose
        stream carries in-flight-send knowledge should pin those send
        events too (their message edges are still to come); unpinned
        crossing sends degrade the contract exactly as exact-mode
        eviction does (the late edge is skipped and counted by the
        layers above).  Returns the removable live events, oldest first
        per process; feed them to :meth:`compact_prefix`.
        """
        keep: dict[ProcessId, int] = {
            process: total - 1
            for process, total in self._events_per_process.items()
        }
        for event in pinned:
            if event.process in keep and event.index < keep[event.process]:
                keep[event.process] = event.index
        return tuple(
            Event(process, index)
            for process, stop in sorted(keep.items())
            for index in range(self._first_live.get(process, 0), stop)
        )

    def _compact(self, dead: set[int]) -> None:
        """Physically drop ``dead`` nodes and incident edges, renumbering
        the survivors (stable order, so the compacted digraph is
        edge-for-edge the one a fresh build of the suffix would make).

        The summary-profile table is rebuilt from the surviving summary
        edges alone (their kinds remapped): profiles only referenced by
        dropped edges would otherwise accumulate forever, and every
        oracle call pays one weight-table entry per profile -- the
        table must stay bounded by the *live* digraph, like everything
        else here.
        """
        remap = [-1] * len(self._nodes)
        survivors: list[Event] = []
        for old_id, event in enumerate(self._nodes):
            if old_id in dead:
                del self._index[event]
                continue
            remap[old_id] = len(survivors)
            survivors.append(event)
        tails: list[int] = []
        heads: list[int] = []
        kinds: list[int] = []
        steps: list[Step] = []
        n_locals = 0
        profiles: list[tuple[int, int, int]] = []
        profile_ids: dict[tuple[int, int, int], int] = {}
        for eidx in range(len(self._tails)):
            tail, head = remap[self._tails[eidx]], remap[self._heads[eidx]]
            kind = self._kinds[eidx]
            if tail < 0 or head < 0:
                if kind == _FWD_MESSAGE:
                    self._messages.remove(self._steps[eidx].edge)
                elif kind >= _SUMMARY:
                    summary = self._steps[eidx]
                    self._n_summaries -= 1
                    self._summary_locals -= summary.local
                    self._summary_hops -= max(
                        summary.forward, summary.backward
                    )
                continue
            if kind == _BWD_LOCAL:
                n_locals += 1
            elif kind >= _SUMMARY:
                key = self._steps[eidx].profile
                pid = profile_ids.get(key)
                if pid is None:
                    pid = len(profiles)
                    profiles.append(key)
                    profile_ids[key] = pid
                kind = _SUMMARY + pid
            tails.append(tail)
            heads.append(head)
            kinds.append(kind)
            steps.append(self._steps[eidx])
        self._nodes = survivors
        for new_id, event in enumerate(survivors):
            self._index[event] = new_id
        self._tails, self._heads = tails, heads
        self._kinds, self._steps = kinds, steps
        self._n_locals = n_locals
        self._summary_profiles = profiles
        self._profile_ids = profile_ids
        adj: list[list[tuple[int, int]]] = [[] for _ in survivors]
        for eidx in range(len(tails)):
            adj[tails[eidx]].append((heads[eidx], kinds[eidx]))
        self._adj = adj
        self._epoch += 1
        if self._kernel_obj is not None:
            self._kernel_obj.notify_compact()

    def removable_prefix(
        self, pinned: Iterable[Event] = ()
    ) -> tuple[Event, ...]:
        """The largest tombstonable prefix no message or summary crosses.

        Every relevant cycle that enters the region behind such a prefix
        can never leave it again (the only region-escaping traversals
        would be message or summary edges crossing the boundary), so
        once the prefix itself is known admissible, removing it exactly
        changes no future full-graph oracle answer.  This is the
        settledness criterion exact-mode eviction uses; when it yields
        nothing (a causal chain links history to the frontier), summary
        mode (:meth:`summarizable_prefix` + :meth:`compact_prefix`) is
        the fallback that still bounds memory.

        Args:
            pinned: events that must stay live (e.g. the send events of
                in-flight messages, whose future message edges would
                otherwise cross the boundary, and each process's frontier
                event so upcoming local edges stay intact).

        Returns the removable live events, oldest first per process;
        feed them to :meth:`remove_prefix` (possibly after checking the
        prefix is worth the compaction cost).
        """
        # keep[p] = first index that must stay live; start fully removable.
        keep = dict(self._events_per_process)
        for event in pinned:
            if event.process in keep and event.index < keep[event.process]:
                keep[event.process] = event.index
        # No message -- and no summary edge, which stands for a bundle of
        # crossing walks -- may span the boundary, in either direction:
        # shrink until closed (each pass only lowers keep[], so this
        # terminates).
        spans = [(m.src, m.dst) for m in self._messages]
        spans.extend((s.tail, s.head) for s in self._live_summaries())
        changed = True
        while changed:
            changed = False
            for src, dst in spans:
                src_live = src.index >= keep[src.process]
                dst_live = dst.index >= keep[dst.process]
                if src_live and not dst_live:
                    keep[dst.process] = dst.index
                    changed = True
                elif dst_live and not src_live:
                    keep[src.process] = src.index
                    changed = True
        return tuple(
            Event(process, index)
            for process, stop in sorted(keep.items())
            for index in range(self._first_live.get(process, 0), stop)
        )

    # ------------------------------------------------------------------
    # the negative-cycle oracle
    # ------------------------------------------------------------------

    def _weight_table(self, p: int, q: int) -> list[int]:
        """Per-kind H-edge weights for a ratio ``p/q`` query: the three
        regular kinds (``_FWD_MESSAGE`` / ``_BWD_MESSAGE`` /
        ``_BWD_LOCAL``) followed by one entry per summary profile.

        The scale counts the local edges folded into summaries alongside
        the live ones, preserving the degeneracy argument of the module
        docstring: every simple cycle of the compacted digraph carries a
        local-edge tie-break of at least 1 and at most ``scale - 1``.
        """
        scale = self._n_locals + self._summary_locals + 1
        table = [p * scale, -q * scale, -1]
        for f, b, loc in self._summary_profiles:
            table.append(scale * (p * f - q * b) - loc)
        return table

    def _has_negative_cycle(
        self, p: int, q: int, sources: list[int] | None = None
    ) -> bool:
        """Queue-based negative-cycle detection on ``H`` weighted for p/q.

        SPFA with round batching: every node starts at distance 0 on the
        work queue (the classical virtual source connected to all nodes),
        and each round relaxes the out-edges of exactly the nodes improved
        in the previous round -- coalescing the relaxation waves that make
        plain FIFO SPFA revisit nodes redundantly.  The queue draining
        proves there is no negative cycle; a relaxation chain growing to
        ``n`` edges proves there is one (the chain walk then revisits a
        node, and the enclosed loop was traversed by strictly improving
        relaxations, so its weight is negative).  Early termination cuts
        both ways: admissible graphs converge once the frontier dies out,
        without ever touching settled regions again, and grossly violating
        ones trip the chain bound long before the ``n * m`` worst case.

        With ``sources``, detection becomes Bellman-Ford from a source
        set: the sources start at distance 0 on the queue, every other
        node at ``+inf``, which detects exactly the negative cycles
        *reachable* from the sources (still with no false positives --
        the chain-length argument is seeding independent).  The ``+inf``
        initialization is essential: zero-initializing non-sources would
        stall the relaxation wave at the first positive-weight
        (forward-message) edge whose running prefix sum is nonnegative,
        missing cycles that genuinely pass through a source.  Callers
        must guarantee every possible negative cycle is reachable from
        the sources, e.g. because the graph without the speculative
        additions is known negative-cycle-free.

        The detection run itself is delegated to the bound kernel (see
        :mod:`repro.core.kernel`): the reference ``py_object`` kernel is
        exactly the loop described above
        (:func:`repro.core.kernel.spfa_has_negative_cycle`); the
        ``flat_int`` kernel short-circuits most probes through an exact
        integer potential certificate and falls back to a warm
        relaxation -- every kernel answers bit-identically.
        """
        return self._kernel.has_negative_cycle(p, q, sources)

    def _negative_cycle_steps(self, p: int, q: int) -> list[Step] | None:
        """Extract one simple negative cycle, as execution-graph steps.

        Used only on the witness path (at most once per violation
        query).  The detection-and-extraction run is the kernel-shared
        :func:`repro.core.kernel.find_negative_cycle_edges` -- one
        round-based Bellman-Ford that records predecessor edge indices
        while detecting and pops the cycle out of the same run (the old
        shape re-ran ``n`` full rounds after detection just to rebuild
        the predecessors) -- so witnesses are identical across kernels
        by construction.
        """
        cycle_edges = find_negative_cycle_edges(self, p, q)
        if cycle_edges is None:
            return None
        # Summary edges expand into their realizing walks, so the
        # returned steps are always genuine execution-graph steps (the
        # expansion may revisit events; classification handles walks).
        steps: list[Step] = []
        for eidx in cycle_edges:
            step = self._steps[eidx]
            if isinstance(step, SummaryEdge):
                steps.extend(step.steps)
            else:
                steps.append(step)
        return steps

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def has_ratio_at_least(
        self,
        ratio: Fraction | float | int | str,
        sources: Iterable[Event] | None = None,
    ) -> bool:
        """Polynomial oracle: does some relevant cycle have
        ``|Z-|/|Z+| >= ratio``?

        Only ratios ``>= 1`` are meaningful (every relevant cycle has
        ratio at least 1 by Definition 3); smaller ratios reduce to
        testing whether any relevant cycle exists at all.

        Args:
            sources: restrict detection to violating cycles *reachable*
                from these events in the traversal digraph (Bellman-Ford
                from a source set).  Only sound when every possible
                violation passes through their reachable region -- the
                speculative scheduler qualifies because its realized
                prefix is violation-free by construction, so any
                violating cycle must involve a speculatively added
                H-edge; every such edge is incident to a new receive
                event, so the cycle passes through -- and is reachable
                from -- that event, and listing the new receive events
                alone suffices.
        """
        r = max(_as_ratio(ratio), Fraction(1))
        self.oracle_calls += 1
        source_ids: list[int] | None = None
        if sources is not None:
            source_ids = [self._index[ev] for ev in sources]
        return self._has_negative_cycle(
            r.numerator, r.denominator, source_ids
        )

    def violating_cycle(
        self, xi: Fraction | float | int | str
    ) -> CycleClassification | None:
        """A relevant cycle violating (2) for ``xi``, or ``None``.

        Violation means ``|Z-|/|Z+| >= xi``; the returned classification
        is guaranteed relevant with ``ratio >= xi``.
        """
        xi_frac = as_xi(xi)
        self.oracle_calls += 1
        steps = self._negative_cycle_steps(
            xi_frac.numerator, xi_frac.denominator
        )
        if steps is None:
            return None
        info = classify(Cycle(tuple(steps)))
        if not info.relevant or info.ratio is None or info.ratio < xi_frac:
            raise AssertionError(
                f"internal error: extracted cycle {info} is not a violation "
                f"witness for Xi={xi_frac}"
            )
        return info

    def check(self, xi: Fraction | float | int | str) -> AdmissibilityResult:
        """Decide ABC admissibility (Definition 4) in polynomial time."""
        xi_frac = as_xi(xi)
        witness = self.violating_cycle(xi_frac)
        return AdmissibilityResult(witness is None, xi_frac, witness)

    def worst_relevant_ratio(
        self, at_least: Fraction | None = None
    ) -> Fraction | None:
        """The exact maximum ``|Z-|/|Z+|`` over all relevant cycles.

        Returns ``None`` when the graph has no relevant cycle.  The result
        is the infimum of admissible ``Xi`` values: the graph is
        ABC-admissible for ``Xi`` iff ``Xi > worst_relevant_ratio()``.

        Implemented as a Stern-Brocot (mediant) search with run-length
        acceleration around the monotone oracle
        :meth:`has_ratio_at_least`.  The maximum is a fraction with
        numerator and denominator bounded by :attr:`ratio_bound` (the
        message count, plus the hops folded into summary edges), so
        once the two bracketing tree nodes have denominator sum exceeding
        that bound, the lower bracket is exact.  Probes are clamped to the
        denominator bound: once a bracket ``(lo, hi)`` is established, a
        mediant descendant with denominator beyond the bound can only test
        true if the maximum itself lay strictly between the brackets with
        a small denominator -- impossible by Stern-Brocot adjacency -- so
        such probes are resolved to ``False`` without running the oracle.

        Args:
            at_least: a ratio already known to be reached by some relevant
                cycle (e.g. the worst ratio of a subgraph).  Oracle calls
                at or below it are answered from the bound, which is what
                warm-starts the incremental monitor.
        """
        max_den = self.ratio_bound
        max_num = self.ratio_bound
        memo: dict[Fraction, bool] = {}

        def oracle(num: int, den: int) -> bool:
            value = Fraction(num, den)
            if at_least is not None and value <= at_least:
                return True
            cached = memo.get(value)
            if cached is None:
                cached = self.has_ratio_at_least(value)
                memo[value] = cached
            return cached

        if at_least is None or at_least < 1:
            if not oracle(1, 1):
                return None

        lo_num, lo_den = 1, 1  # oracle true: some relevant cycle exists
        hi_num, hi_den = 1, 0  # +infinity; oracle false beyond the max
        while lo_den + hi_den <= max_den:
            if oracle(lo_num + hi_num, lo_den + hi_den):
                # Walk lo towards hi while the oracle stays true, clamped
                # to the denominator bound (numerator bound when hi is
                # still +infinity: no relevant ratio exceeds the message
                # count).
                if hi_den:
                    cap = (max_den - lo_den) // hi_den
                else:
                    cap = max_num * lo_den - lo_num
                k = _max_k(
                    lambda k: oracle(
                        lo_num + k * hi_num, lo_den + k * hi_den
                    ),
                    cap,
                )
                lo_num += k * hi_num
                lo_den += k * hi_den
            else:
                # Walk hi towards lo while the oracle stays false.  If it
                # never turns true again before the denominator bound, lo
                # is exact.
                def still_false(k: int) -> bool:
                    return not oracle(k * lo_num + hi_num, k * lo_den + hi_den)

                if not still_false(1):
                    hi_num += lo_num
                    hi_den += lo_den
                    continue
                cap = (max_den - hi_den) // lo_den
                k = _max_k(still_false, cap)
                hi_num += k * lo_num
                hi_den += k * lo_den
        # Any fraction strictly between lo and hi has denominator greater
        # than max_den, so the maximum ratio is exactly the lower bracket.
        return Fraction(lo_num, lo_den)


def _max_k(probe: Callable[[int], bool], cap: int) -> int:
    """Largest ``k`` in ``[1, cap]`` with ``probe(k)`` true.

    ``probe(1)`` must be known true and ``probe`` monotone (a true prefix
    followed by a false suffix).  Probes the cap first -- in a converged
    Stern-Brocot search the whole clamped range is usually still true, so
    this resolves the walk in one oracle call -- then gallops by doubling
    and bisects.  Never evaluates beyond ``cap``.
    """
    if cap <= 1 or probe(cap):
        return cap
    k = 1
    while 2 * k < cap and probe(2 * k):
        k *= 2
    lo, hi = k, min(2 * k, cap)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid
    return lo


# ----------------------------------------------------------------------
# one-shot convenience functions (build a checker, query once)
# ----------------------------------------------------------------------


def has_relevant_cycle_with_ratio_at_least(
    graph: ExecutionGraph, ratio: Fraction | float | int | str
) -> bool:
    """Polynomial oracle: does some relevant cycle have ``|Z-|/|Z+| >= ratio``?

    One-shot form of :meth:`AdmissibilityChecker.has_ratio_at_least`;
    build the checker once when issuing several queries.
    """
    return AdmissibilityChecker(graph).has_ratio_at_least(ratio)


def find_violating_cycle(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> CycleClassification | None:
    """A relevant cycle violating (2) for ``xi``, or ``None``.

    Violation means ``|Z-|/|Z+| >= xi``; the returned classification is
    guaranteed relevant with ``ratio >= xi``.
    """
    return AdmissibilityChecker(graph).violating_cycle(xi)


def check_abc(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> AdmissibilityResult:
    """Decide ABC admissibility (Definition 4) in polynomial time."""
    return AdmissibilityChecker(graph).check(xi)


def check_abc_exhaustive(
    graph: ExecutionGraph,
    xi: Fraction | float | int | str,
    max_length: int | None = None,
) -> AdmissibilityResult:
    """Decide admissibility by enumerating all cycles (small graphs only).

    Used to cross-validate :func:`check_abc` in the test suite, and to
    implement the length-restricted ABC variants of Section 6 (via
    ``max_length``).
    """
    xi_frac = as_xi(xi)
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.violates(xi_frac):
            return AdmissibilityResult(False, xi_frac, info)
    return AdmissibilityResult(True, xi_frac, None)


def worst_relevant_ratio(graph: ExecutionGraph) -> Fraction | None:
    """The exact maximum ``|Z-|/|Z+|`` over all relevant cycles.

    One-shot form of :meth:`AdmissibilityChecker.worst_relevant_ratio`
    (see there for the algorithm); ``None`` means the graph has no
    relevant cycle.
    """
    return AdmissibilityChecker(graph).worst_relevant_ratio()


def worst_relevant_ratio_exhaustive(
    graph: ExecutionGraph, max_length: int | None = None
) -> Fraction | None:
    """Exhaustive counterpart of :func:`worst_relevant_ratio` (tests)."""
    worst: Fraction | None = None
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.relevant and info.ratio is not None:
            if worst is None or info.ratio > worst:
                worst = info.ratio
    return worst

"""The ABC synchrony condition (Definition 4) and its decision procedures.

An execution is admissible in the ABC model with parameter ``Xi > 1`` iff
every *relevant* cycle ``Z`` of its execution graph satisfies

    |Z-| / |Z+|  <  Xi.                                            (2)

"For every relevant cycle" quantifies over exponentially many subgraphs,
but the condition can be decided in polynomial time.  Build the *traversal
digraph* ``H`` over the events of ``G``:

* a message ``u -> v`` may be traversed forward (H-edge ``u -> v``) or
  backward (H-edge ``v -> u``);
* a local edge ``u -> v`` may only be traversed backward (H-edge
  ``v -> u``) -- relevant cycles have all local edges backward.

Walking a relevant cycle along its orientation is then exactly a simple
cycle in ``H``, and conversely every simple cycle of ``H`` is a relevant
cycle of ``G`` except for two degenerate shapes:

* the 2-cycle using both traversal directions of one message (not a
  shadow-graph cycle), and
* cycles whose forward messages outnumber the backward ones (Definition 3
  then forces the opposite orientation, making the local edges forward).

Both degeneracies are eliminated by weighting.  For a violation test
against ``Xi = p/q`` (``ratio >= p/q``), give each H-edge the weight

* message forward:  ``+p * M``
* message backward: ``-q * M``
* local backward:   ``-1``

with ``M = (number of local edges) + 1``.  A simple H-cycle has weight
``(p*|Z+| - q*|Z-|) * M - #locals``; since every genuine cycle contains at
least one and at most ``M - 1`` local edges, the weight is negative iff
``q*|Z-| - p*|Z+| >= 0``, i.e. iff the cycle witnesses ``ratio >= p/q``.
The degenerate 2-cycle weighs ``(p - q) * M >= 0`` and cycles with more
forward than backward messages weigh at least ``M - #locals > 0``, so
neither can be reported.  Violation detection is therefore exactly
negative-cycle detection (Bellman-Ford).

On top of the oracle, :func:`worst_relevant_ratio` finds the exact maximum
``|Z-|/|Z+|`` over all relevant cycles by Stern-Brocot search: the ratio
is a fraction with numerator and denominator bounded by the message count,
so the search terminates with the exact rational.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.core.cycles import (
    AGAINST,
    ALONG,
    Cycle,
    CycleClassification,
    Step,
    classify,
    enumerate_cycles,
)
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph

__all__ = [
    "AdmissibilityResult",
    "check_abc",
    "check_abc_exhaustive",
    "has_relevant_cycle_with_ratio_at_least",
    "find_violating_cycle",
    "worst_relevant_ratio",
    "worst_relevant_ratio_exhaustive",
]


@dataclass(frozen=True)
class AdmissibilityResult:
    """Outcome of an ABC admissibility check.

    Attributes:
        admissible: whether every relevant cycle satisfies (2).
        xi: the synchrony parameter the graph was checked against.
        witness: a violating relevant cycle when one exists.
    """

    admissible: bool
    xi: Fraction
    witness: CycleClassification | None = None

    def __bool__(self) -> bool:
        return self.admissible


class _TraversalDigraph:
    """The weighted digraph ``H`` described in the module docstring."""

    def __init__(self, graph: ExecutionGraph, p: int, q: int) -> None:
        self.nodes: list[Event] = list(graph.events())
        self.index: dict[Event, int] = {ev: i for i, ev in enumerate(self.nodes)}
        scale = len(graph.local_edges) + 1
        # H-edges as (tail, head, weight, step).
        self.edges: list[tuple[int, int, int, Step]] = []
        for m in graph.messages:
            u, v = self.index[m.src], self.index[m.dst]
            self.edges.append((u, v, p * scale, Step(m, ALONG)))
            self.edges.append((v, u, -q * scale, Step(m, AGAINST)))
        for loc in graph.local_edges:
            u, v = self.index[loc.src], self.index[loc.dst]
            self.edges.append((v, u, -1, Step(loc, AGAINST)))

    def find_negative_cycle(self) -> list[Step] | None:
        """Bellman-Ford from a virtual source connected to every node.

        Returns the steps of one simple negative cycle (in traversal
        order), or ``None`` when no negative cycle exists.
        """
        n = len(self.nodes)
        if n == 0 or not self.edges:
            return None
        dist = [0] * n
        pred: list[int | None] = [None] * n  # index into self.edges
        updated_node: int | None = None
        for _ in range(n):
            updated_node = None
            for eidx, (tail, head, weight, _step) in enumerate(self.edges):
                if dist[tail] + weight < dist[head]:
                    dist[head] = dist[tail] + weight
                    pred[head] = eidx
                    updated_node = head
            if updated_node is None:
                return None
        # A node updated in round n is reachable from a negative cycle;
        # walking n predecessor links is guaranteed to land on the cycle.
        assert updated_node is not None
        node = updated_node
        for _ in range(n):
            eidx = pred[node]
            assert eidx is not None
            node = self.edges[eidx][0]
        # Collect the cycle through the predecessor links.
        cycle_edges: list[int] = []
        start = node
        while True:
            eidx = pred[node]
            assert eidx is not None
            cycle_edges.append(eidx)
            node = self.edges[eidx][0]
            if node == start:
                break
        cycle_edges.reverse()
        return [self.edges[eidx][3] for eidx in cycle_edges]


def _as_ratio(xi: Fraction | float | int | str) -> Fraction:
    ratio = Fraction(xi)
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return ratio


def has_relevant_cycle_with_ratio_at_least(
    graph: ExecutionGraph, ratio: Fraction | float | int | str
) -> bool:
    """Polynomial oracle: does some relevant cycle have ``|Z-|/|Z+| >= ratio``?

    Only ratios ``>= 1`` are meaningful (every relevant cycle has ratio at
    least 1 by Definition 3); smaller ratios reduce to testing whether any
    relevant cycle exists at all.
    """
    r = max(_as_ratio(ratio), Fraction(1))
    digraph = _TraversalDigraph(graph, r.numerator, r.denominator)
    return digraph.find_negative_cycle() is not None


def find_violating_cycle(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> CycleClassification | None:
    """A relevant cycle violating (2) for ``xi``, or ``None``.

    Violation means ``|Z-|/|Z+| >= xi``; the returned classification is
    guaranteed relevant with ``ratio >= xi``.
    """
    xi_frac = _as_ratio(xi)
    if xi_frac <= 1:
        raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
    digraph = _TraversalDigraph(graph, xi_frac.numerator, xi_frac.denominator)
    steps = digraph.find_negative_cycle()
    if steps is None:
        return None
    info = classify(Cycle(tuple(steps)))
    if not info.relevant or info.ratio is None or info.ratio < xi_frac:
        raise AssertionError(
            f"internal error: extracted cycle {info} is not a violation "
            f"witness for Xi={xi_frac}"
        )
    return info


def check_abc(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> AdmissibilityResult:
    """Decide ABC admissibility (Definition 4) in polynomial time."""
    xi_frac = _as_ratio(xi)
    witness = find_violating_cycle(graph, xi_frac)
    return AdmissibilityResult(witness is None, xi_frac, witness)


def check_abc_exhaustive(
    graph: ExecutionGraph,
    xi: Fraction | float | int | str,
    max_length: int | None = None,
) -> AdmissibilityResult:
    """Decide admissibility by enumerating all cycles (small graphs only).

    Used to cross-validate :func:`check_abc` in the test suite, and to
    implement the length-restricted ABC variants of Section 6 (via
    ``max_length``).
    """
    xi_frac = _as_ratio(xi)
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.violates(xi_frac):
            return AdmissibilityResult(False, xi_frac, info)
    return AdmissibilityResult(True, xi_frac, None)


def worst_relevant_ratio(graph: ExecutionGraph) -> Fraction | None:
    """The exact maximum ``|Z-|/|Z+|`` over all relevant cycles.

    Returns ``None`` when the graph has no relevant cycle.  The result is
    the infimum of admissible ``Xi`` values: the graph is ABC-admissible
    for ``Xi`` iff ``Xi > worst_relevant_ratio(graph)``.

    Implemented as a Stern-Brocot (mediant) search with run-length
    acceleration around the monotone oracle
    :func:`has_relevant_cycle_with_ratio_at_least`.  The maximum is a
    fraction with numerator and denominator bounded by the number of
    messages, so once the two bracketing tree nodes have denominator sum
    exceeding that bound, the lower bracket is exact.
    """
    if not has_relevant_cycle_with_ratio_at_least(graph, Fraction(1)):
        return None
    max_den = max(len(graph.messages), 1)

    def oracle(num: int, den: int) -> bool:
        return has_relevant_cycle_with_ratio_at_least(graph, Fraction(num, den))

    def max_k(true_for: int, probe) -> int:
        """Largest k >= true_for with ``probe(k)`` true (gallop + bisect).

        ``probe`` must be monotone: true up to some k, false afterwards,
        and guaranteed to turn false before denominators exceed max_den.
        """
        k = max(true_for, 1)
        while probe(2 * k):
            k *= 2
        lo, hi = k, 2 * k  # probe(lo) true, probe(hi) false
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if probe(mid):
                lo = mid
            else:
                hi = mid
        return lo

    lo_num, lo_den = 1, 1  # oracle true: some relevant cycle has ratio >= 1
    hi_num, hi_den = 1, 0  # +infinity; oracle false beyond the max ratio
    while lo_den + hi_den <= max_den:
        if oracle(lo_num + hi_num, lo_den + hi_den):
            # Walk lo towards hi while the oracle stays true.  The ratio is
            # bounded by the message count, so the walk must stop.
            k = max_k(1, lambda k: oracle(lo_num + k * hi_num, lo_den + k * hi_den))
            lo_num, lo_den = lo_num + k * hi_num, lo_den + k * hi_den
        else:
            # Walk hi towards lo while the oracle stays false.  If it never
            # turns true again before the denominator bound, lo is exact.
            def still_false(k: int) -> bool:
                num, den = k * lo_num + hi_num, k * lo_den + hi_den
                return den <= max_den and not oracle(num, den)

            if not still_false(1):
                hi_num, hi_den = lo_num + hi_num, lo_den + hi_den
                continue
            k = max_k(1, still_false)
            hi_num, hi_den = k * lo_num + hi_num, k * lo_den + hi_den
    # Any fraction strictly between lo and hi has denominator greater than
    # max_den, so the maximum ratio is exactly the lower bracket.
    return Fraction(lo_num, lo_den)


def worst_relevant_ratio_exhaustive(
    graph: ExecutionGraph, max_length: int | None = None
) -> Fraction | None:
    """Exhaustive counterpart of :func:`worst_relevant_ratio` (tests)."""
    worst: Fraction | None = None
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.relevant and info.ratio is not None:
            if worst is None or info.ratio > worst:
                worst = info.ratio
    return worst

"""The ABC synchrony condition (Definition 4) and its decision procedures.

An execution is admissible in the ABC model with parameter ``Xi > 1`` iff
every *relevant* cycle ``Z`` of its execution graph satisfies

    |Z-| / |Z+|  <  Xi.                                            (2)

"For every relevant cycle" quantifies over exponentially many subgraphs,
but the condition can be decided in polynomial time.  Build the *traversal
digraph* ``H`` over the events of ``G``:

* a message ``u -> v`` may be traversed forward (H-edge ``u -> v``) or
  backward (H-edge ``v -> u``);
* a local edge ``u -> v`` may only be traversed backward (H-edge
  ``v -> u``) -- relevant cycles have all local edges backward.

Walking a relevant cycle along its orientation is then exactly a simple
cycle in ``H``, and conversely every simple cycle of ``H`` is a relevant
cycle of ``G`` except for two degenerate shapes:

* the 2-cycle using both traversal directions of one message (not a
  shadow-graph cycle), and
* cycles whose forward messages outnumber the backward ones (Definition 3
  then forces the opposite orientation, making the local edges forward).

Both degeneracies are eliminated by weighting.  For a violation test
against ``Xi = p/q`` (``ratio >= p/q``), give each H-edge the weight

* message forward:  ``+p * M``
* message backward: ``-q * M``
* local backward:   ``-1``

with ``M = (number of local edges) + 1``.  A simple H-cycle has weight
``(p*|Z+| - q*|Z-|) * M - #locals``; since every genuine cycle contains at
least one and at most ``M - 1`` local edges, the weight is negative iff
``q*|Z-| - p*|Z+| >= 0``, i.e. iff the cycle witnesses ``ratio >= p/q``.
The degenerate 2-cycle weighs ``(p - q) * M >= 0`` and cycles with more
forward than backward messages weigh at least ``M - #locals > 0``, so
neither can be reported.  Violation detection is therefore exactly
negative-cycle detection.

:class:`AdmissibilityChecker` is the workhorse behind every public
function here: it builds the *topology* of ``H`` exactly once per
execution graph (nodes, adjacency, traversal steps) and re-derives only
the edge weights per ``(p, q)`` query, so the many oracle calls issued by
a Stern-Brocot search -- or by the online monitor of
:mod:`repro.analysis.online` -- share all of the construction work.
Negative cycles are found with an early-terminating queue-based detector
(SPFA): nodes are relaxed from a work queue seeded with every node (the
classical virtual source), the queue draining proves the absence of a
negative cycle, and a relaxation chain growing to ``n`` edges proves its
presence.  The checker is also *extendable in place* (``add_event`` /
``add_message``), which is what makes incremental monitoring cheap.

On top of the oracle, :func:`worst_relevant_ratio` finds the exact maximum
``|Z-|/|Z+|`` over all relevant cycles by Stern-Brocot search: the ratio
is a fraction with numerator and denominator bounded by the message count,
so the search terminates with the exact rational.  The search clamps its
galloping probes to that denominator bound (a mediant below the current
bracket whose denominator exceeds the bound can never be the answer, so
probing it would waste a full negative-cycle run) and short-circuits
re-queries through a monotone result cache, optionally warm-started from
a ratio already known to be reached (``at_least``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.core.cycles import (
    AGAINST,
    ALONG,
    Cycle,
    CycleClassification,
    Step,
    classify,
    enumerate_cycles,
)
from repro.core.events import Event, ProcessId
from repro.core.execution_graph import (
    ExecutionGraph,
    LocalEdge,
    MessageEdge,
)

__all__ = [
    "AdmissibilityChecker",
    "AdmissibilityResult",
    "as_xi",
    "check_abc",
    "check_abc_exhaustive",
    "farey_successor",
    "has_relevant_cycle_with_ratio_at_least",
    "find_violating_cycle",
    "worst_relevant_ratio",
    "worst_relevant_ratio_exhaustive",
]


@dataclass(frozen=True)
class AdmissibilityResult:
    """Outcome of an ABC admissibility check.

    Attributes:
        admissible: whether every relevant cycle satisfies (2).
        xi: the synchrony parameter the graph was checked against.
        witness: a violating relevant cycle when one exists.
    """

    admissible: bool
    xi: Fraction
    witness: CycleClassification | None = None

    def __bool__(self) -> bool:
        return self.admissible


def as_xi(xi: Fraction | float | int | str) -> Fraction:
    """Validate a synchrony parameter: the ABC model requires ``Xi > 1``.

    The single place where ``Xi`` arguments are normalized; every checker
    that accepts a ``Xi`` goes through it so that the accepted types and
    the error message stay consistent.
    """
    xi_frac = Fraction(xi)
    if xi_frac <= 1:
        raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
    return xi_frac


def _as_ratio(xi: Fraction | float | int | str) -> Fraction:
    ratio = Fraction(xi)
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return ratio


def farey_successor(value: Fraction, max_den: int) -> Fraction:
    """The smallest fraction above ``value`` with denominator ``<= max_den``.

    This is ``value``'s right neighbor in the Farey sequence of order
    ``max_den``: for ``value = a/b`` it is the ``c/d`` with
    ``b*c - a*d == 1`` and the largest ``d <= max_den``, found from one
    extended-gcd solution shifted by multiples of ``(a, b)``.  Any
    fraction strictly between the two has denominator ``> max_den`` --
    the arithmetic backbone of the incremental worst-ratio refresh
    (:meth:`AdmissibilityChecker.updated_worst_ratio`): a worst ratio
    that moved at all under graph extension must have reached at least
    this value.
    """
    a, b = value.numerator, value.denominator
    if b > max_den:
        raise ValueError(
            f"denominator of {value} already exceeds the bound {max_den}"
        )
    if a == 0:
        return Fraction(1, max_den)
    # Extended gcd: find (c0, d0) with b*c0 - a*d0 == 1.
    old_r, r = b, a
    old_x, x = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    assert old_r == 1, f"{value} not in lowest terms"
    c0 = old_x
    d0 = (b * c0 - 1) // a
    assert b * c0 - a * d0 == 1
    shift = (max_den - d0) // b
    return Fraction(c0 + shift * a, d0 + shift * b)


# Edge kinds of the traversal digraph; weights per (p, q) query are
# derived from the kind, so only these tags are stored per edge.
_FWD_MESSAGE = 0
_BWD_MESSAGE = 1
_BWD_LOCAL = 2


class AdmissibilityChecker:
    """Reusable, extendable decision procedure for one execution graph.

    The traversal digraph ``H`` (see the module docstring) is built once:
    nodes, adjacency lists and the :class:`~repro.core.cycles.Step` each
    H-edge corresponds to are all independent of the ratio being tested.
    Each query then only materializes the weight of every edge from its
    kind, so a Stern-Brocot search issuing dozens of oracle calls pays the
    graph construction exactly once instead of once per call.

    The checker can also be *grown in place* -- :meth:`add_event` appends
    a receive event (creating the implied local edge), :meth:`add_message`
    a message edge -- which is the substrate of the online ?ABC/<>ABC
    monitor in :mod:`repro.analysis.online`.  Structural validity (one
    incoming message per event, digraph acyclicity) is the caller's
    responsibility when growing incrementally; events fed from a recorded
    trace or an :class:`~repro.core.execution_graph.ExecutionGraph`
    satisfy it by construction.

    Attributes:
        oracle_calls: number of negative-cycle runs issued so far (for
            benchmarks and incrementality tests).
    """

    def __init__(self, graph: ExecutionGraph | None = None) -> None:
        self._nodes: list[Event] = []
        self._index: dict[Event, int] = {}
        self._events_per_process: dict[ProcessId, int] = {}
        # H-edges, struct-of-arrays: topology and steps are immutable per
        # edge, weights are derived per query from ``kind``.
        self._tails: list[int] = []
        self._heads: list[int] = []
        self._kinds: list[int] = []
        self._steps: list[Step] = []
        # node index -> [(head, kind), ...]; the detection hot loop reads
        # only this, with weights resolved through a 3-entry table.
        self._adj: list[list[tuple[int, int]]] = []
        self._messages: set[MessageEdge] = set()
        self._n_locals = 0
        self.oracle_calls = 0
        if graph is not None:
            for process in graph.processes:
                for event in graph.events_of(process):
                    self.add_event(event)
            for message in graph.messages:
                self.add_message(message.src, message.dst)

    # ------------------------------------------------------------------
    # incremental construction
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._nodes)

    @property
    def n_messages(self) -> int:
        return len(self._messages)

    @property
    def n_local_edges(self) -> int:
        return self._n_locals

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        """Processes with at least one observed event."""
        return tuple(self._events_per_process)

    def n_events_of(self, process: ProcessId) -> int:
        return self._events_per_process.get(process, 0)

    @property
    def messages(self) -> frozenset[MessageEdge]:
        """The message edges added so far (snapshot)."""
        return frozenset(self._messages)

    def has_message(self, message: MessageEdge) -> bool:
        return message in self._messages

    def add_event(self, event: Event) -> None:
        """Append the next receive event of its process.

        Events of one process must arrive in local order (index 0, 1, ...);
        the local edge from the previous event is created implicitly, as a
        backward-only H-edge.
        """
        expected = self._events_per_process.get(event.process, 0)
        if event.index != expected:
            raise ValueError(
                f"events of process {event.process} must arrive in local "
                f"order: expected index {expected}, got {event!r}"
            )
        self._events_per_process[event.process] = expected + 1
        self._index[event] = len(self._nodes)
        self._nodes.append(event)
        self._adj.append([])
        if event.index > 0:
            prev = Event(event.process, event.index - 1)
            self._add_h_edge(
                self._index[event],
                self._index[prev],
                _BWD_LOCAL,
                Step(LocalEdge(prev, event), AGAINST),
            )
            self._n_locals += 1

    def add_message(self, src: Event, dst: Event) -> bool:
        """Add a message edge; returns ``False`` for an exact duplicate.

        Duplicates are dropped to match
        :class:`~repro.core.execution_graph.ExecutionGraph`, which stores
        messages as a set.
        """
        message = MessageEdge(src, dst)
        if message in self._messages:
            return False
        for endpoint in (src, dst):
            if endpoint not in self._index:
                raise KeyError(f"event {endpoint!r} not added to the checker")
        if src == dst:
            raise ValueError(f"message {message!r} may not be a self loop")
        self._messages.add(message)
        u, v = self._index[src], self._index[dst]
        self._add_h_edge(u, v, _FWD_MESSAGE, Step(message, ALONG))
        self._add_h_edge(v, u, _BWD_MESSAGE, Step(message, AGAINST))
        return True

    def extends(self, graph: ExecutionGraph) -> bool:
        """Whether ``graph`` extends the prefix this checker has seen
        (at least as many events per process, a superset of messages)."""
        for process in self.processes:
            if len(graph.events_of(process)) < self.n_events_of(process):
                return False
        if self._messages:
            if not self._messages <= set(graph.messages):
                return False
        return True

    def absorb(self, graph: ExecutionGraph) -> bool:
        """Add everything ``graph`` has beyond the observed prefix.

        ``graph`` must satisfy :meth:`extends`.  Returns whether any
        message edge was added -- only then can new relevant cycles have
        appeared, so only then is a worst-ratio refresh needed.
        """
        for process in graph.processes:
            known = self.n_events_of(process)
            for event in graph.events_of(process)[known:]:
                self.add_event(event)
        added = False
        for message in graph.messages:
            if message not in self._messages:
                self.add_message(message.src, message.dst)
                added = True
        return added

    def updated_worst_ratio(
        self, previous: Fraction | None
    ) -> Fraction | None:
        """The exact worst relevant ratio, given the exact worst
        ``previous`` of a subgraph of the current graph.

        Fast path of the incremental monitor: under extension the worst
        ratio either stayed at ``previous`` or reached at least its
        Farey successor under the current denominator bound, so one
        oracle call usually settles it; only an actual increase -- at
        most ``O(max_den^2)`` times ever, in practice a handful -- pays
        a warm-started Stern-Brocot search.
        """
        if previous is None:
            if not self.has_ratio_at_least(1):
                return None
            return self.worst_relevant_ratio(at_least=Fraction(1))
        successor = farey_successor(previous, max(self.n_messages, 1))
        if not self.has_ratio_at_least(successor):
            return previous
        return self.worst_relevant_ratio(at_least=successor)

    def _add_h_edge(self, tail: int, head: int, kind: int, step: Step) -> None:
        self._tails.append(tail)
        self._heads.append(head)
        self._kinds.append(kind)
        self._steps.append(step)
        self._adj[tail].append((head, kind))

    # ------------------------------------------------------------------
    # the negative-cycle oracle
    # ------------------------------------------------------------------

    def _weight_table(self, p: int, q: int) -> tuple[int, int, int]:
        """Per-kind H-edge weights for a ratio ``p/q`` query, indexed by
        ``_FWD_MESSAGE`` / ``_BWD_MESSAGE`` / ``_BWD_LOCAL``."""
        scale = self._n_locals + 1
        return (p * scale, -q * scale, -1)

    def _weights(self, p: int, q: int) -> list[int]:
        wtab = self._weight_table(p, q)
        return [wtab[kind] for kind in self._kinds]

    def _has_negative_cycle(self, p: int, q: int) -> bool:
        """Queue-based negative-cycle detection on ``H`` weighted for p/q.

        SPFA with round batching: every node starts at distance 0 on the
        work queue (the classical virtual source connected to all nodes),
        and each round relaxes the out-edges of exactly the nodes improved
        in the previous round -- coalescing the relaxation waves that make
        plain FIFO SPFA revisit nodes redundantly.  The queue draining
        proves there is no negative cycle; a relaxation chain growing to
        ``n`` edges proves there is one (the chain walk then revisits a
        node, and the enclosed loop was traversed by strictly improving
        relaxations, so its weight is negative).  Early termination cuts
        both ways: admissible graphs converge once the frontier dies out,
        without ever touching settled regions again, and grossly violating
        ones trip the chain bound long before the ``n * m`` worst case.
        """
        n = len(self._nodes)
        if n == 0 or not self._messages:
            return False
        wtab = self._weight_table(p, q)
        adj = self._adj
        dist = [0] * n
        chain = [0] * n  # edges in the walk realizing the current dist
        queued = [False] * n
        active = [u for u in range(n) if adj[u]]
        while active:
            next_active: list[int] = []
            push = next_active.append
            for u in active:
                du = dist[u]
                cu = chain[u] + 1
                for v, kind in adj[u]:
                    nd = du + wtab[kind]
                    if nd < dist[v]:
                        if cu >= n:
                            return True
                        dist[v] = nd
                        chain[v] = cu
                        if not queued[v]:
                            queued[v] = True
                            push(v)
            # Process the next frontier newest-first: every negative
            # H-edge (message backward, local backward) points towards
            # older events, and node ids follow arrival order, so a
            # descending sweep cascades whole backward chains within one
            # round instead of one hop per round.
            next_active.sort(reverse=True)
            active = next_active
            for v in active:
                queued[v] = False
        return False

    def _negative_cycle_steps(self, p: int, q: int) -> list[Step] | None:
        """Extract one simple negative cycle by round-based Bellman-Ford.

        Used only on the witness path (at most once per violation query):
        after ``n`` full relaxation rounds, a node updated in the last
        round is reachable from a negative cycle, and walking ``n``
        predecessor links from it is guaranteed to land on the cycle.
        """
        n = len(self._nodes)
        if n == 0 or not self._messages:
            return None
        weights = self._weights(p, q)
        tails, heads = self._tails, self._heads
        dist = [0] * n
        pred = [-1] * n  # H-edge index that last improved each node
        updated_node = -1
        for _ in range(n):
            updated_node = -1
            for eidx in range(len(tails)):
                tail, head = tails[eidx], heads[eidx]
                nd = dist[tail] + weights[eidx]
                if nd < dist[head]:
                    dist[head] = nd
                    pred[head] = eidx
                    updated_node = head
            if updated_node < 0:
                return None
        node = updated_node
        for _ in range(n):
            eidx = pred[node]
            assert eidx >= 0
            node = tails[eidx]
        # Collect the cycle through the predecessor links.
        cycle_edges: list[int] = []
        start = node
        while True:
            eidx = pred[node]
            assert eidx >= 0
            cycle_edges.append(eidx)
            node = tails[eidx]
            if node == start:
                break
        cycle_edges.reverse()
        return [self._steps[eidx] for eidx in cycle_edges]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def has_ratio_at_least(self, ratio: Fraction | float | int | str) -> bool:
        """Polynomial oracle: does some relevant cycle have
        ``|Z-|/|Z+| >= ratio``?

        Only ratios ``>= 1`` are meaningful (every relevant cycle has
        ratio at least 1 by Definition 3); smaller ratios reduce to
        testing whether any relevant cycle exists at all.
        """
        r = max(_as_ratio(ratio), Fraction(1))
        self.oracle_calls += 1
        return self._has_negative_cycle(r.numerator, r.denominator)

    def violating_cycle(
        self, xi: Fraction | float | int | str
    ) -> CycleClassification | None:
        """A relevant cycle violating (2) for ``xi``, or ``None``.

        Violation means ``|Z-|/|Z+| >= xi``; the returned classification
        is guaranteed relevant with ``ratio >= xi``.
        """
        xi_frac = as_xi(xi)
        self.oracle_calls += 1
        steps = self._negative_cycle_steps(
            xi_frac.numerator, xi_frac.denominator
        )
        if steps is None:
            return None
        info = classify(Cycle(tuple(steps)))
        if not info.relevant or info.ratio is None or info.ratio < xi_frac:
            raise AssertionError(
                f"internal error: extracted cycle {info} is not a violation "
                f"witness for Xi={xi_frac}"
            )
        return info

    def check(self, xi: Fraction | float | int | str) -> AdmissibilityResult:
        """Decide ABC admissibility (Definition 4) in polynomial time."""
        xi_frac = as_xi(xi)
        witness = self.violating_cycle(xi_frac)
        return AdmissibilityResult(witness is None, xi_frac, witness)

    def worst_relevant_ratio(
        self, at_least: Fraction | None = None
    ) -> Fraction | None:
        """The exact maximum ``|Z-|/|Z+|`` over all relevant cycles.

        Returns ``None`` when the graph has no relevant cycle.  The result
        is the infimum of admissible ``Xi`` values: the graph is
        ABC-admissible for ``Xi`` iff ``Xi > worst_relevant_ratio()``.

        Implemented as a Stern-Brocot (mediant) search with run-length
        acceleration around the monotone oracle
        :meth:`has_ratio_at_least`.  The maximum is a fraction with
        numerator and denominator bounded by the number of messages, so
        once the two bracketing tree nodes have denominator sum exceeding
        that bound, the lower bracket is exact.  Probes are clamped to the
        denominator bound: once a bracket ``(lo, hi)`` is established, a
        mediant descendant with denominator beyond the bound can only test
        true if the maximum itself lay strictly between the brackets with
        a small denominator -- impossible by Stern-Brocot adjacency -- so
        such probes are resolved to ``False`` without running the oracle.

        Args:
            at_least: a ratio already known to be reached by some relevant
                cycle (e.g. the worst ratio of a subgraph).  Oracle calls
                at or below it are answered from the bound, which is what
                warm-starts the incremental monitor.
        """
        max_den = max(self.n_messages, 1)
        max_num = max(self.n_messages, 1)
        memo: dict[Fraction, bool] = {}

        def oracle(num: int, den: int) -> bool:
            value = Fraction(num, den)
            if at_least is not None and value <= at_least:
                return True
            cached = memo.get(value)
            if cached is None:
                cached = self.has_ratio_at_least(value)
                memo[value] = cached
            return cached

        if at_least is None or at_least < 1:
            if not oracle(1, 1):
                return None

        lo_num, lo_den = 1, 1  # oracle true: some relevant cycle exists
        hi_num, hi_den = 1, 0  # +infinity; oracle false beyond the max
        while lo_den + hi_den <= max_den:
            if oracle(lo_num + hi_num, lo_den + hi_den):
                # Walk lo towards hi while the oracle stays true, clamped
                # to the denominator bound (numerator bound when hi is
                # still +infinity: no relevant ratio exceeds the message
                # count).
                if hi_den:
                    cap = (max_den - lo_den) // hi_den
                else:
                    cap = max_num * lo_den - lo_num
                k = _max_k(
                    lambda k: oracle(
                        lo_num + k * hi_num, lo_den + k * hi_den
                    ),
                    cap,
                )
                lo_num += k * hi_num
                lo_den += k * hi_den
            else:
                # Walk hi towards lo while the oracle stays false.  If it
                # never turns true again before the denominator bound, lo
                # is exact.
                def still_false(k: int) -> bool:
                    return not oracle(k * lo_num + hi_num, k * lo_den + hi_den)

                if not still_false(1):
                    hi_num += lo_num
                    hi_den += lo_den
                    continue
                cap = (max_den - hi_den) // lo_den
                k = _max_k(still_false, cap)
                hi_num += k * lo_num
                hi_den += k * lo_den
        # Any fraction strictly between lo and hi has denominator greater
        # than max_den, so the maximum ratio is exactly the lower bracket.
        return Fraction(lo_num, lo_den)


def _max_k(probe: Callable[[int], bool], cap: int) -> int:
    """Largest ``k`` in ``[1, cap]`` with ``probe(k)`` true.

    ``probe(1)`` must be known true and ``probe`` monotone (a true prefix
    followed by a false suffix).  Probes the cap first -- in a converged
    Stern-Brocot search the whole clamped range is usually still true, so
    this resolves the walk in one oracle call -- then gallops by doubling
    and bisects.  Never evaluates beyond ``cap``.
    """
    if cap <= 1 or probe(cap):
        return cap
    k = 1
    while 2 * k < cap and probe(2 * k):
        k *= 2
    lo, hi = k, min(2 * k, cap)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid):
            lo = mid
        else:
            hi = mid
    return lo


# ----------------------------------------------------------------------
# one-shot convenience functions (build a checker, query once)
# ----------------------------------------------------------------------


def has_relevant_cycle_with_ratio_at_least(
    graph: ExecutionGraph, ratio: Fraction | float | int | str
) -> bool:
    """Polynomial oracle: does some relevant cycle have ``|Z-|/|Z+| >= ratio``?

    One-shot form of :meth:`AdmissibilityChecker.has_ratio_at_least`;
    build the checker once when issuing several queries.
    """
    return AdmissibilityChecker(graph).has_ratio_at_least(ratio)


def find_violating_cycle(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> CycleClassification | None:
    """A relevant cycle violating (2) for ``xi``, or ``None``.

    Violation means ``|Z-|/|Z+| >= xi``; the returned classification is
    guaranteed relevant with ``ratio >= xi``.
    """
    return AdmissibilityChecker(graph).violating_cycle(xi)


def check_abc(
    graph: ExecutionGraph, xi: Fraction | float | int | str
) -> AdmissibilityResult:
    """Decide ABC admissibility (Definition 4) in polynomial time."""
    return AdmissibilityChecker(graph).check(xi)


def check_abc_exhaustive(
    graph: ExecutionGraph,
    xi: Fraction | float | int | str,
    max_length: int | None = None,
) -> AdmissibilityResult:
    """Decide admissibility by enumerating all cycles (small graphs only).

    Used to cross-validate :func:`check_abc` in the test suite, and to
    implement the length-restricted ABC variants of Section 6 (via
    ``max_length``).
    """
    xi_frac = as_xi(xi)
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.violates(xi_frac):
            return AdmissibilityResult(False, xi_frac, info)
    return AdmissibilityResult(True, xi_frac, None)


def worst_relevant_ratio(graph: ExecutionGraph) -> Fraction | None:
    """The exact maximum ``|Z-|/|Z+|`` over all relevant cycles.

    One-shot form of :meth:`AdmissibilityChecker.worst_relevant_ratio`
    (see there for the algorithm); ``None`` means the graph has no
    relevant cycle.
    """
    return AdmissibilityChecker(graph).worst_relevant_ratio()


def worst_relevant_ratio_exhaustive(
    graph: ExecutionGraph, max_length: int | None = None
) -> Fraction | None:
    """Exhaustive counterpart of :func:`worst_relevant_ratio` (tests)."""
    worst: Fraction | None = None
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.relevant and info.ratio is not None:
            if worst is None or info.ratio > worst:
                worst = info.ratio
    return worst

"""Consistent cuts and cut intervals (Definitions 5 and 6).

The ABC model is time-free, so Algorithm 1's synchrony guarantee (Theorem
2) is stated over *consistent cuts* rather than points in real time: a set
``S`` of events that is left-closed under the reflexive-transitive
happens-before relation and contains at least one event of every correct
process.  Definition 6 additionally defines the *consistent cut interval*
``[<phi>, <psi>] = <psi> \\ <phi>`` used by the bounded-progress condition
(Definition 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph

__all__ = [
    "Cut",
    "left_closure",
    "is_left_closed",
    "is_consistent_cut",
    "cut_interval",
    "frontier",
    "clock_values_at_cut",
    "real_time_cut",
]


@dataclass(frozen=True)
class Cut:
    """A set of events of an execution graph, with cut-related queries.

    A ``Cut`` does not enforce consistency on construction; use
    :meth:`is_consistent` (Definition 5) to check it.  This mirrors the
    paper, which also works with not-necessarily-consistent cuts (e.g. the
    cut ``S''`` in the proof of Lemma 1) and closes them when needed.
    """

    events: frozenset[Event]

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def frontier(self) -> dict[ProcessId, Event]:
        """The last event of each process inside the cut."""
        last: dict[ProcessId, Event] = {}
        for ev in self.events:
            if ev.process not in last or ev.index > last[ev.process].index:
                last[ev.process] = ev
        return last

    def left_closure(self, graph: ExecutionGraph) -> "Cut":
        """The smallest left-closed cut containing this one."""
        if not self.events:
            return self
        return Cut(graph.causal_past(self.events))

    def is_left_closed(self, graph: ExecutionGraph) -> bool:
        return self.events == graph.causal_past(self.events) if self.events else True

    def is_consistent(
        self, graph: ExecutionGraph, correct: Iterable[ProcessId]
    ) -> bool:
        """Definition 5: left-closed and covering every correct process."""
        covered = {ev.process for ev in self.events}
        if any(p not in covered for p in correct):
            return False
        return self.is_left_closed(graph)

    def union(self, other: "Cut") -> "Cut":
        return Cut(self.events | other.events)

    def difference(self, other: "Cut") -> "Cut":
        return Cut(self.events - other.events)

    def restricted_to(self, process: ProcessId) -> tuple[Event, ...]:
        """The events of ``process`` inside the cut, in local order."""
        return tuple(
            sorted(ev for ev in self.events if ev.process == process)
        )


def left_closure(graph: ExecutionGraph, events: Iterable[Event]) -> Cut:
    """``<events>``: the causal past of ``events`` (Definition 6)."""
    events = list(events)
    if not events:
        return Cut(frozenset())
    return Cut(graph.causal_past(events))


def is_left_closed(graph: ExecutionGraph, events: Iterable[Event]) -> bool:
    return Cut(frozenset(events)).is_left_closed(graph)


def is_consistent_cut(
    graph: ExecutionGraph,
    events: Iterable[Event],
    correct: Iterable[ProcessId],
) -> bool:
    """Definition 5, on a plain event set."""
    return Cut(frozenset(events)).is_consistent(graph, correct)


def cut_interval(graph: ExecutionGraph, phi: Event, psi: Event) -> Cut:
    """The consistent cut interval ``[<phi>, <psi>] = <psi> \\ <phi>``.

    Definition 6 requires ``phi -> psi``; we accept any pair of events and
    simply take the set difference of the two closures, which coincides
    with the paper's definition whenever ``phi ->* psi``.
    """
    past_psi = graph.causal_past([psi])
    past_phi = graph.causal_past([phi])
    return Cut(frozenset(past_psi - past_phi))


def frontier(graph: ExecutionGraph, cut: Cut) -> dict[ProcessId, Event]:
    """The frontier of a cut (last event per process)."""
    return cut.frontier()


def clock_values_at_cut(
    cut: Cut,
    clock_of: Callable[[Event], int | None],
    processes: Iterable[ProcessId],
) -> dict[ProcessId, int]:
    """``C_p(S)`` for each process: the last clock value within the cut.

    ``clock_of`` maps an event to the clock value after executing the
    corresponding computing step (``C_p(phi_p)``), or ``None`` when the
    step did not touch the clock.  Since clock values of correct processes
    are monotonically increasing (Algorithm 1), the last value within the
    cut is also the maximum; we return the maximum over the cut, matching
    the paper's definition of ``C_p(S)``.
    """
    values: dict[ProcessId, int] = {}
    wanted = set(processes)
    for ev in cut.events:
        if ev.process not in wanted:
            continue
        value = clock_of(ev)
        if value is None:
            continue
        if ev.process not in values or value > values[ev.process]:
            values[ev.process] = value
    return values


def real_time_cut(
    times: Mapping[Event, float], t: float
) -> Cut:
    """All events with occurrence time ``<= t`` (Mattern real-time cut).

    With non-negative message delays such a cut is automatically
    left-closed, which is how Theorem 2 transfers to the real-time
    precision bound of Theorem 3.
    """
    return Cut(frozenset(ev for ev, time in times.items() if time <= t))

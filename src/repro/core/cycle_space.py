"""The non-standard cycle space of Section 4.1.

The proof of Theorem 7 works in a vector space spanned by the *cycle
vectors* of an execution graph: for a cycle ``Z`` walked along its
orientation, the coefficient of message ``e`` is ``+1`` when ``e`` is a
backward edge of ``Z``, ``-1`` when forward, and ``0`` when absent.  (The
space differs from the classic graph-theoretic cycle space because
"cycles" are cycles of the undirected shadow graph that still carry edge
orientation - footnote 13 of the paper.)

This module implements

* cycle vectors and the addition ``(+)`` of cycle-space elements,
* consistency of cycle pairs (Definition 10),
* the constructive *mixed-edge removal* of Lemmas 8-10 via walk splicing,
* the *mixed-free decomposition* of Theorem 11, and
* the sum properties of Lemma 7 (non-relevant) and Lemma 11 / Corollary 1
  (relevant), which together drive the Farkas argument of Theorem 12.

The decomposition here is algorithmic rather than proof-shaped: cancelling
an oppositely-traversed message between two closed walks splices them into
one walk (Lemma 8's chain surgery), cancelling within a single walk splits
it in two, and the final walks are cut at repeated events into simple
cycles (the ``M_1, ..., M_l`` of Theorem 11).  All three operations
preserve the multiset of non-cancelled steps, hence the vector sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Literal, Mapping, Sequence

from repro.core.cycles import AGAINST, ALONG, Cycle, CycleClassification, Step
from repro.core.execution_graph import MessageEdge

__all__ = [
    "CycleVector",
    "walk_vector",
    "vector_of",
    "combine",
    "consistency",
    "mixed_free_decomposition",
    "farkas_sum_property",
    "relevant_sum_property",
    "nonrelevant_sum_property",
]


@dataclass(frozen=True)
class CycleVector:
    """A cycle-space element: integer coefficients indexed by message.

    Coefficients follow the paper's matrix convention: ``+1`` for a
    backward message, ``-1`` for a forward message (Figure 7).  Linear
    combinations produce arbitrary integer coefficients (multi-edges).
    """

    coefficients: Mapping[MessageEdge, int]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "coefficients",
            {e: c for e, c in self.coefficients.items() if c != 0},
        )

    def __getitem__(self, edge: MessageEdge) -> int:
        return self.coefficients.get(edge, 0)

    def __add__(self, other: "CycleVector") -> "CycleVector":
        merged = dict(self.coefficients)
        for edge, coeff in other.coefficients.items():
            merged[edge] = merged.get(edge, 0) + coeff
        return CycleVector(merged)

    def __mul__(self, scalar: int) -> "CycleVector":
        return CycleVector({e: scalar * c for e, c in self.coefficients.items()})

    __rmul__ = __mul__

    def __neg__(self) -> "CycleVector":
        return self * -1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CycleVector):
            return NotImplemented
        return dict(self.coefficients) == dict(other.coefficients)

    def __hash__(self) -> int:
        return hash(frozenset(self.coefficients.items()))

    @property
    def s_minus(self) -> int:
        """``s-``: the sum of the non-negative coefficients.

        For a vector representing a single relevant cycle this equals
        ``|Z-|`` (footnote 12 of the paper).
        """
        return sum(c for c in self.coefficients.values() if c > 0)

    @property
    def s_plus(self) -> int:
        """``s+``: the sum of the negative coefficients (a non-positive
        number); ``-s_plus`` equals ``|Z+|`` for a single relevant cycle."""
        return sum(c for c in self.coefficients.values() if c < 0)

    def is_mixed_free_with(self, other: "CycleVector") -> bool:
        """No message carries opposite signs in the two vectors."""
        for edge, coeff in self.coefficients.items():
            if coeff * other[edge] < 0:
                return False
        return True

    def messages(self) -> frozenset[MessageEdge]:
        return frozenset(self.coefficients)


def walk_vector(cycle: Cycle | Sequence[Step]) -> CycleVector:
    """The cycle vector of a walk, relative to its own walk direction.

    A message traversed ``AGAINST`` the walk direction is a backward edge
    (coefficient ``+1``); traversed ``ALONG`` it is forward (``-1``).
    For the canonical cycle stored in a :class:`CycleClassification` the
    walk direction *is* the orientation, so this matches the paper's cycle
    vector exactly.
    """
    steps = cycle.steps if isinstance(cycle, Cycle) else tuple(cycle)
    coeffs: dict[MessageEdge, int] = {}
    for step in steps:
        if not step.edge.is_message:
            continue
        assert isinstance(step.edge, MessageEdge)
        delta = 1 if step.direction == AGAINST else -1
        coeffs[step.edge] = coeffs.get(step.edge, 0) + delta
    return CycleVector(coeffs)


def vector_of(info: CycleClassification) -> CycleVector:
    """The paper's cycle vector of a classified cycle."""
    return walk_vector(info.cycle)


def combine(
    cycles: Iterable[CycleClassification | Cycle],
    coefficients: Iterable[int] | None = None,
) -> CycleVector:
    """The vector of ``lambda_1 Z_1 (+) ... (+) lambda_n Z_n``."""
    cycles = list(cycles)
    coeffs = list(coefficients) if coefficients is not None else [1] * len(cycles)
    if len(coeffs) != len(cycles):
        raise ValueError("need one coefficient per cycle")
    total = CycleVector({})
    for item, lam in zip(cycles, coeffs):
        vec = vector_of(item) if isinstance(item, CycleClassification) else walk_vector(item)
        total = total + lam * vec
    return total


def consistency(
    a: CycleVector | CycleClassification | Cycle,
    b: CycleVector | CycleClassification | Cycle,
) -> Literal["i", "o", "disjoint", "inconsistent"]:
    """Definition 10: how two cycles relate on their shared messages.

    Returns ``"i"`` (identically consistent), ``"o"`` (oppositely
    consistent), ``"disjoint"`` (no shared message; i-consistent by
    definition), or ``"inconsistent"`` (shared messages with both signs).
    """

    def as_vector(x) -> CycleVector:
        if isinstance(x, CycleVector):
            return x
        if isinstance(x, CycleClassification):
            return vector_of(x)
        return walk_vector(x)

    va, vb = as_vector(a), as_vector(b)
    products = {
        va[e] * vb[e]
        for e in va.messages() & vb.messages()
        if va[e] * vb[e] != 0
    }
    signs = {1 if p > 0 else -1 for p in products}
    if not signs:
        return "disjoint"
    if signs == {1}:
        return "i"
    if signs == {-1}:
        return "o"
    return "inconsistent"


# ----------------------------------------------------------------------
# Mixed-free decomposition (Lemmas 8-10, Theorem 11)
# ----------------------------------------------------------------------

_Walk = list[Step]


def _rotate_to_last(walk: _Walk, position: int) -> _Walk:
    """Rotate a closed walk so the step at ``position`` comes last."""
    return walk[position + 1 :] + walk[: position + 1]


def _find_opposite_pair(walk_a: _Walk, walk_b: _Walk) -> tuple[int, int] | None:
    """Positions of an oppositely-traversed shared message, if any."""
    directions: dict[MessageEdge, list[tuple[int, int]]] = {}
    for i, step in enumerate(walk_a):
        if step.edge.is_message:
            directions.setdefault(step.edge, []).append((i, step.direction))
    for j, step in enumerate(walk_b):
        if not step.edge.is_message:
            continue
        for i, direction in directions.get(step.edge, ()):
            if direction == -step.direction:
                return i, j
    return None


def _splice(walk_a: _Walk, walk_b: _Walk, i: int, j: int) -> _Walk:
    """Cancel the opposite steps ``walk_a[i]``/``walk_b[j]`` (Lemma 8).

    Rotating both walks so the cancelled step comes last leaves two open
    paths with swapped endpoints; their concatenation is again a closed
    walk and contains every step except the cancelled pair.
    """
    a = _rotate_to_last(walk_a, i)[:-1]
    b = _rotate_to_last(walk_b, j)[:-1]
    return a + b


def _cancel_within(walk: _Walk) -> tuple[_Walk, _Walk] | None:
    """Cancel an opposite message pair inside one walk, splitting it."""
    seen: dict[MessageEdge, list[tuple[int, int]]] = {}
    for i, step in enumerate(walk):
        if not step.edge.is_message:
            continue
        for k, direction in seen.get(step.edge, ()):
            if direction == -step.direction:
                inner = walk[k + 1 : i]
                outer = walk[i + 1 :] + walk[:k]
                return inner, outer
        seen.setdefault(step.edge, []).append((i, step.direction))
    return None


def _split_simple(walk: _Walk) -> list[_Walk]:
    """Cut a closed walk at repeated events into vertex-simple cycles."""
    result: list[_Walk] = []
    remaining = list(walk)
    # Iterate until the walk is simple; each pass extracts one loop.
    progress = True
    while progress and remaining:
        progress = False
        seen_at: dict[object, int] = {}
        start_events = [step.start for step in remaining]
        for idx, ev in enumerate(start_events):
            if ev in seen_at:
                loop = remaining[seen_at[ev] : idx]
                if loop:
                    result.append(loop)
                remaining = remaining[: seen_at[ev]] + remaining[idx:]
                progress = True
                break
            seen_at[ev] = idx
    if remaining:
        result.append(remaining)
    return result


def mixed_free_decomposition(
    cycles: Sequence[CycleClassification | Cycle],
) -> list[Cycle]:
    """Theorem 11: rewrite ``Z_1 (+) ... (+) Z_n`` without cancellations.

    Returns cycles ``M_1, ..., M_l`` (as closed walks; vertex-simple) such
    that no message is traversed with opposite directions by two of them,
    and the sum of their walk vectors equals the sum of the inputs'.

    The input cycles must be supplied in oriented form (the canonical
    cycles of :func:`repro.core.cycles.classify`, or any walk whose
    direction should count as the orientation).
    """
    walks: list[_Walk] = []
    for item in cycles:
        cyc = item.cycle if isinstance(item, CycleClassification) else item
        walks.append(list(cyc.steps))

    changed = True
    while changed:
        changed = False
        # Cancel within single walks first.
        for idx, walk in enumerate(walks):
            split = _cancel_within(walk)
            if split is not None:
                del walks[idx]
                walks.extend(w for w in split if w)
                changed = True
                break
        if changed:
            continue
        # Then cancel across pairs of walks.
        for ai in range(len(walks)):
            for bi in range(ai + 1, len(walks)):
                pair = _find_opposite_pair(walks[ai], walks[bi])
                if pair is None:
                    continue
                spliced = _splice(walks[ai], walks[bi], *pair)
                del walks[bi]
                del walks[ai]
                if spliced:
                    walks.append(spliced)
                changed = True
                break
            if changed:
                break

    simple: list[Cycle] = []
    for walk in walks:
        for piece in _split_simple(walk):
            if len(piece) >= 2:
                simple.append(Cycle(tuple(piece)))
    return simple


# ----------------------------------------------------------------------
# Sum properties (Lemma 7, Lemma 11 / Corollary 1)
# ----------------------------------------------------------------------


def farkas_sum_property(vector: CycleVector, xi: Fraction | int | float) -> bool:
    """Condition (9): ``Xi * s+ + s- < 0`` for a combined cycle vector.

    This is exactly ``ybar^T b > 0`` for the canonical Farkas certificate
    built from the combination (Section 4.1): the negative coefficients of
    the sum vector force upper-bound multipliers (weighted ``Xi``), the
    positive ones force lower-bound multipliers (weighted ``1``).
    """
    xi_frac = Fraction(xi)
    return xi_frac * vector.s_plus + vector.s_minus < 0


def relevant_sum_property(
    vector: CycleVector, xi: Fraction | int | float
) -> bool:
    """Lemma 11: condition (9) for combinations of *relevant* vectors.

    Holds for every non-negative integer combination of relevant cycle
    vectors of an ABC-admissible execution graph; equivalently (footnote
    12 / Corollary 1) the combination behaves like a relevant cycle whose
    ratio ``s- / (-s+)`` stays below ``Xi``.
    """
    return farkas_sum_property(vector, xi)


def nonrelevant_sum_property(
    vector: CycleVector, xi: Fraction | int | float
) -> bool:
    """Lemma 7: condition (9) for combinations of *flipped* non-relevant
    vectors.

    Non-relevant cycles enter the Farkas matrix with the sign-flipped
    vector (the sums in (6) get the opposite sign, cp. Figure 4).  Each
    flipped vector has coefficient sum ``|Z+| - |Z-| <= 0``, so any
    non-negative combination has ``s- <= |s+|`` and, with ``Xi > 1``,
    satisfies ``Xi * s+ + s- < 0``.  Callers pass the flipped combination.
    """
    return farkas_sum_property(vector, xi)

"""Weaker variants of the ABC model (Section 6).

The paper defines, analogously to Dwork et al. and Widder & Schmid:

* **ABC**    - ``Xi`` known, holds perpetually (Definition 4);
* **?ABC**   - ``Xi`` unknown, holds perpetually;
* **<>ABC**  - ``Xi`` known, holds eventually: only relevant cycles
  starting at or after some (unknown) consistent cut ``C_GST`` satisfy
  condition (2);
* **?<>ABC** - ``Xi`` unknown and holds eventually.

It also sketches an orthogonal weakening: dropping all cycles that exceed
a certain length from the space-time diagram -- e.g. Algorithm 1 remains
correct when only cycles with at most two forward messages are
constrained.  :func:`check_abc_forward_bounded` implements that variant
exactly (in polynomial time via a layered DAG), and
:func:`check_abc_length_restricted` the total-length restriction.

Implementation note: the eventual-variant searches here run on the
*shared tombstoned digraph* of one
:class:`~repro.core.synchrony.AdmissibilityChecker`.
:func:`earliest_stabilization_cut` grows its ``C_GST`` candidate by
absorbing the cut into the live digraph through the checker's two-mode
compaction engine
(:meth:`~repro.core.synchrony.AdmissibilityChecker.compact_prefix`),
so the iteration never rebuilds a suffix graph or re-indexes witnesses
-- the same substrate the online monitor and the enforcing scheduler
use (see ``docs/architecture.md`` for the contracts).  The mode choice
is load-bearing: *exact* mode's compacted survivor is edge-for-edge
the suffix graph, which is precisely the <>ABC exemption semantics --
a cycle crossing ``C_GST`` is exempt by Definition, so the *summary*
mode the monitoring layers use (which deliberately keeps crossing
cycles detectable) would absorb strictly larger cuts than the
definition allows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.core.cuts import Cut
from repro.core.events import Event, ProcessId
from repro.core.execution_graph import ExecutionGraph, MessageEdge
from repro.core.synchrony import (
    AdmissibilityChecker,
    AdmissibilityResult,
    as_xi,
    check_abc,
    check_abc_exhaustive,
)

__all__ = [
    "suffix_graph",
    "check_eventual_abc",
    "earliest_stabilization_cut",
    "unknown_xi_infimum",
    "running_worst_ratio",
    "check_abc_forward_bounded",
    "check_abc_length_restricted",
]


def suffix_graph(graph: ExecutionGraph, cut: Cut) -> ExecutionGraph:
    """The execution graph restricted to events *after* the cut.

    Events inside ``cut`` are removed together with their incident
    messages; the surviving events of each process are re-indexed so the
    result is again a well-formed execution graph.  A relevant cycle of
    the suffix graph is exactly a relevant cycle of ``graph`` that starts
    at or after the cut.
    """
    keep: dict[ProcessId, list[Event]] = {}
    rename: dict[Event, Event] = {}
    for p in graph.processes:
        survivors = [ev for ev in graph.events_of(p) if ev not in cut]
        keep[p] = []
        for new_index, ev in enumerate(survivors):
            renamed = Event(p, new_index)
            rename[ev] = renamed
            keep[p].append(renamed)
    messages = [
        MessageEdge(rename[m.src], rename[m.dst])
        for m in graph.messages
        if m.src in rename and m.dst in rename
    ]
    return ExecutionGraph(keep, messages)


def check_eventual_abc(
    graph: ExecutionGraph,
    xi: Fraction | int | float,
    stabilization: Cut,
) -> AdmissibilityResult:
    """<>ABC admissibility: condition (2) beyond the stabilization cut.

    The cut plays the role of ``C_GST``; cycles touching it are exempt.
    """
    return check_abc(suffix_graph(graph, stabilization), xi)


def earliest_stabilization_cut(
    graph: ExecutionGraph,
    xi: Fraction | int | float,
    *,
    kernel: str | None = None,
) -> Cut:
    """A (greedy, left-closed) stabilization cut for <>ABC.

    Repeatedly finds a violating relevant cycle in the current suffix and
    absorbs the causal past of the cycle's earliest event into the cut.
    The result is a valid ``C_GST`` witness: the suffix beyond it is
    ABC-admissible.  It is minimal in the weak sense that every absorbed
    event was the earliest event of some violating cycle.

    One :class:`~repro.core.synchrony.AdmissibilityChecker` is shared
    across all absorbed cuts: instead of rebuilding the suffix graph (and
    a fresh traversal digraph) per iteration, the grown cut is absorbed
    into the live digraph by *exact-mode* compaction
    (:meth:`~repro.core.synchrony.AdmissibilityChecker.compact_prefix`),
    whose queries then answer for the suffix exactly -- with original
    event identities, so no survivor re-indexing round trip is needed to
    map witnesses back.  Summary mode would be wrong here: it keeps
    cycles crossing the absorbed cut detectable, but <>ABC exempts
    exactly those cycles, so the search must forget them.
    """
    absorbed: set[Event] = set()
    checker = AdmissibilityChecker(graph, kernel=kernel)
    while True:
        witness = checker.violating_cycle(xi)
        if witness is None:
            if not absorbed:
                return Cut(frozenset())
            return Cut(frozenset(absorbed)).left_closure(graph)
        earliest = min(witness.cycle.events)
        absorbed |= graph.causal_past([earliest])
        # Already-compacted events in the cumulative cut are ignored.
        checker.compact_prefix(absorbed, mode="exact")


def unknown_xi_infimum(
    graph: ExecutionGraph, *, kernel: str | None = None
) -> Fraction | None:
    """?ABC: the unknown parameter must exceed this bound.

    For a finite prefix, the execution is ?ABC-admissible for precisely
    those (unknown) ``Xi`` strictly above the worst relevant-cycle ratio;
    ``None`` means every ``Xi > 1`` works (no relevant cycle at all).
    """
    return AdmissibilityChecker(graph, kernel=kernel).worst_relevant_ratio()


def running_worst_ratio(
    prefixes: Iterable[ExecutionGraph],
    *,
    kernel: str | None = None,
) -> list[Fraction | None]:
    """The worst relevant ratio of each prefix of a growing execution.

    Useful for studying the ?ABC model: an adaptive algorithm's estimate
    ``Xihat`` must eventually dominate this non-decreasing sequence.

    Implemented on the incremental machinery of
    :class:`~repro.core.synchrony.AdmissibilityChecker`: each prefix
    that extends its predecessor is absorbed as a graph diff and settled
    by :meth:`~repro.core.synchrony.AdmissibilityChecker.updated_worst_ratio`
    (typically one oracle call), instead of paying a full Stern-Brocot
    search per prefix; non-extending entries fall back to a batch
    search.  To monitor a recorded trace record-by-record -- with
    violation callbacks -- use
    :class:`repro.analysis.online.OnlineAbcMonitor` or
    :func:`repro.analysis.online.running_worst_ratio_of_trace`.
    """
    checker: AdmissibilityChecker | None = None
    worst: Fraction | None = None
    out: list[Fraction | None] = []
    for graph in prefixes:
        if checker is not None and checker.extends(graph):
            if checker.absorb(graph):
                worst = checker.updated_worst_ratio(worst)
        else:
            checker = AdmissibilityChecker(graph, kernel=kernel)
            worst = checker.updated_worst_ratio(None)
        out.append(worst)
    return out


def check_abc_forward_bounded(
    graph: ExecutionGraph,
    xi: Fraction | int | float,
    max_forward: int,
) -> bool:
    """ABC restricted to relevant cycles with at most ``max_forward``
    forward messages (Section 6's "at most 2 forward messages" variant).

    Polynomial: layer the traversal digraph by the number of forward
    messages used.  Within a layer only backward traversals remain, which
    cannot cycle (they would form a directed cycle of the execution
    graph), so the layered graph is a DAG and longest paths are exact.
    A violating cycle with ``f <= max_forward`` forward messages exists
    iff some event reaches itself in a higher layer with scaled weight
    ``> 0`` (same weighting as :mod:`repro.core.synchrony`).
    """
    xi_frac = as_xi(xi)
    if max_forward < 1:
        raise ValueError("a relevant cycle needs at least one forward message")
    p, q = xi_frac.numerator, xi_frac.denominator
    events = list(graph.events())
    index = {ev: i for i, ev in enumerate(events)}
    n = len(events)
    scale = len(graph.local_edges) + 1

    # Within-layer edges (backward traversals) and layer-up edges (forward).
    backward: list[tuple[int, int, int]] = []
    forward: list[tuple[int, int, int]] = []
    for m in graph.messages:
        u, v = index[m.src], index[m.dst]
        forward.append((u, v, -p * scale))
        backward.append((v, u, q * scale))
    for loc in graph.local_edges:
        u, v = index[loc.src], index[loc.dst]
        backward.append((v, u, 1))

    order = _backward_topological_order(n, backward)

    for start in range(n):
        # best[f][v]: max weight of a walk from (start, layer 0) to
        # (v, layer f).  Layers advance only on forward edges.
        neg_inf = None
        best = [[neg_inf] * n for _ in range(max_forward + 1)]
        best[0][start] = 0
        for layer in range(max_forward + 1):
            _relax_within_layer(best[layer], order, backward)
            if layer < max_forward:
                for u, v, w in forward:
                    if best[layer][u] is not None:
                        cand = best[layer][u] + w
                        if best[layer + 1][v] is None or cand > best[layer + 1][v]:
                            best[layer + 1][v] = cand
        for layer in range(1, max_forward + 1):
            value = best[layer][start]
            if value is not None and value > 0:
                return False
    return True


def _backward_topological_order(
    n: int, backward: list[tuple[int, int, int]]
) -> list[int]:
    """Topological order of the within-layer (backward-traversal) DAG."""
    from collections import deque

    out: dict[int, list[int]] = {}
    indeg = [0] * n
    for u, v, _w in backward:
        out.setdefault(u, []).append(v)
        indeg[v] += 1
    queue = deque(i for i in range(n) if indeg[i] == 0)
    order: list[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in out.get(u, ()):
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != n:
        raise AssertionError(
            "backward-traversal subgraph is cyclic; execution graph invalid"
        )
    return order


def _relax_within_layer(
    best: list[int | None],
    order: list[int],
    backward: list[tuple[int, int, int]],
) -> None:
    """Longest-path relaxation along the within-layer DAG, in place."""
    adj: dict[int, list[tuple[int, int]]] = {}
    for u, v, w in backward:
        adj.setdefault(u, []).append((v, w))
    for u in order:
        if best[u] is None:
            continue
        for v, w in adj.get(u, ()):
            cand = best[u] + w
            if best[v] is None or cand > best[v]:
                best[v] = cand


def check_abc_length_restricted(
    graph: ExecutionGraph,
    xi: Fraction | int | float,
    max_length: int,
) -> AdmissibilityResult:
    """ABC restricted to cycles of total step count at most ``max_length``
    (exhaustive; the "drop all long cycles" weakening of Section 6)."""
    return check_abc_exhaustive(graph, xi, max_length=max_length)

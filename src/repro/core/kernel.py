"""Pluggable relaxation kernels for the admissibility oracle hot loop.

Every oracle query of :class:`~repro.core.synchrony.AdmissibilityChecker`
bottoms out in one primitive: negative-cycle detection on the traversal
digraph ``H`` re-weighted for a ratio ``p/q``.  This module makes that
primitive a *kernel* -- a swappable strategy object bound to one checker
-- selected per checker by constructor flag or the ``REPRO_KERNEL``
environment variable:

* ``py_object`` (the default): the reference kernel -- exactly the
  round-batched SPFA the checker has always run, reading the checker's
  adjacency lists directly.
* ``flat_int``: the exact-arithmetic fast kernel, described below.
* ``vector``: ``flat_int`` with its certificate sweep vectorized over an
  optional numpy backend.  Degrades gracefully -- without numpy (or when
  a query's magnitudes could overflow int64) it behaves exactly like
  ``flat_int``, keeping the stdlib-only default intact.

The ``flat_int`` kernel rests on two exact short-circuits, maintained in
flat parallel arrays of plain Python integers:

**The potential certificate** (exact ``False`` answers).  If some node
potential ``pi`` satisfies ``pi[tail] + w(e) >= pi[head]`` for every
H-edge at the query weights, summing around any cycle telescopes the
potentials away, leaving ``weight(cycle) >= 0`` -- no negative cycle.
The kernel maintains per-node integer *clock profiles* ``(F, B, L)``
evaluating to ``pi[v] = s*(p*F - q*B) - L``: a Lamport-style least
solution of the *lower-bound* constraints (the negative-weight H-edges:
message-backward, local-backward, and backward-heavy summaries), grown
forward along causality as events arrive -- O(1) amortized per new
edge, because a new event's clock is fixed by its immediate
predecessors, and only *late* edges between old events cascade, along
the (frontier-bounded) causal future cone.  Per edge, the kernel stores
the integer *slack profile* ``profile[tail] + hops(e) - profile[head]``;
the certificate holds at ``(p, q, s)`` exactly when every slack profile
evaluates ``>= 0``.  Slack profiles that are nonnegative for *every*
admissible query (``df >= max(db, 0)`` and ``dl <= 0`` -- in particular
the all-zero profile of every constraint the clock satisfies tightly)
are dropped from consideration entirely; the remainder live in a
multiset with an O(1) conservatively-wide probe window over their
critical ratios, falling back to an exact sweep over the distinct
profiles.  Certificate evaluation is therefore O(1) on the fast path
and O(distinct unsafe profiles) otherwise, with zero object churn.
Soundness never depends on the clock being *the* least solution (or on
cascade caps, rollback leftovers, or the pinned comparison ratio):
whatever integer vector the profiles hold, a passing sweep *is* a
feasible potential at the probed weights, and any maintenance slop only
makes the certificate fail more often, demoting the probe to a genuine
relaxation run.

**The witness memo** (exact ``True`` answers).  When a detection run
trips the chain bound, the kernel walks the predecessor edges it
recorded and extracts the violating cycle's hop profile ``(F, B)``.  A
cycle with ``q*B >= p*F`` has weight ``s*(p*F - q*B) - L < 0``, so as
long as its edges remain in the (append-only) digraph, every later
probe with ``q*B >= p*F`` is answered ``True`` in O(1) -- which is what
makes the Stern-Brocot searches issued on a genuine worst-ratio
increase cheap: their below-the-maximum probes all hit the memo.  The
memo is invalidated the moment a rollback or compaction touches any of
its edges, and never answers seeded queries (their reachability
contract belongs to the caller).

**Overflow safety**: there is nothing to argue away -- every comparison
is performed on arbitrary-precision Python integers (cross-multiplied
wherever ratios are compared), and the optional numpy sweep guards its
input magnitudes and falls back to exact arithmetic before int64 could
saturate.  Deep Stern-Brocot refinement can push ``p`` and ``q`` to the
full ratio bound and summary profiles can carry large hop counts;
neither changes any answer.

Witness extraction is kernel-*shared*: :func:`find_negative_cycle_edges`
runs one round-based Bellman-Ford that records predecessor edge indices
*during* detection and extracts the cycle from them the moment a
relaxation chain trips the ``n``-edge bound -- the detection run is
reused instead of re-running full rounds afterwards -- so the witnesses
are identical across kernels by construction.

This module deliberately imports nothing from
:mod:`repro.core.synchrony` (which imports *it*): kernels read the
checker's struct-of-arrays digraph (``_tails`` / ``_heads`` / ``_kinds``
/ ``_adj`` / ``_weight_table``) through the instance passed at bind
time.  The edge-kind tags live here as the canonical definition.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.synchrony import AdmissibilityChecker

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_ENV_VAR",
    "FlatIntKernel",
    "Kernel",
    "PyObjectKernel",
    "VectorKernel",
    "available_kernels",
    "find_negative_cycle_edges",
    "make_kernel",
    "resolve_kernel_name",
    "spfa_has_negative_cycle",
]

# Edge kinds of the traversal digraph; weights per (p, q) query are
# derived from the kind, so only these tags are stored per edge.  Kinds
# at or above SUMMARY index the checker's deduplicated
# (forward, backward, local) summary-profile table.
FWD_MESSAGE = 0
BWD_MESSAGE = 1
BWD_LOCAL = 2
SUMMARY = 3

KERNEL_ENV_VAR = "REPRO_KERNEL"
DEFAULT_KERNEL = "py_object"


def spfa_has_negative_cycle(
    checker: "AdmissibilityChecker",
    p: int,
    q: int,
    sources: list[int] | None = None,
) -> bool:
    """The reference detection loop (see
    :meth:`~repro.core.synchrony.AdmissibilityChecker._has_negative_cycle`
    for the full semantics): round-batched SPFA from a virtual source,
    or genuine Bellman-Ford from ``sources`` with non-sources at
    ``+inf``.  Shared verbatim by the reference kernel and by the fast
    kernel's fallback paths, so fallback answers cannot drift."""
    n = len(checker._nodes)
    if n == 0 or (not checker._messages and not checker._n_summaries):
        return False
    wtab = checker._weight_table(p, q)
    adj = checker._adj
    chain = [0] * n  # edges in the walk realizing the current dist
    queued = [False] * n
    if sources is None:
        dist: list[int | float] = [0] * n
        active = [u for u in range(n) if adj[u]]
    else:
        dist = [float("inf")] * n
        for u in sources:
            dist[u] = 0
        active = sorted({u for u in sources if adj[u]})
    while active:
        next_active: list[int] = []
        push = next_active.append
        for u in active:
            du = dist[u]
            cu = chain[u] + 1
            for v, kind in adj[u]:
                nd = du + wtab[kind]
                if nd < dist[v]:
                    if cu >= n:
                        return True
                    dist[v] = nd
                    chain[v] = cu
                    if not queued[v]:
                        queued[v] = True
                        push(v)
        # Process the next frontier newest-first: every negative H-edge
        # (message backward, local backward) points towards older
        # events, and node ids follow arrival order, so a descending
        # sweep cascades whole backward chains within one round instead
        # of one hop per round.
        next_active.sort(reverse=True)
        active = next_active
        for v in active:
            queued[v] = False
    return False


def find_negative_cycle_edges(
    checker: "AdmissibilityChecker", p: int, q: int
) -> list[int] | None:
    """One simple negative H-cycle as edge indices, or ``None``.

    Round-based Bellman-Ford that records the predecessor edge index of
    every improvement *while detecting*: the moment some relaxation
    chain reaches ``n`` edges a negative cycle is certain, and the
    predecessor graph -- whose every cycle is negative, because each
    link was a strict improvement when recorded -- is walked with
    visited marks to pop the cycle out of the very run that found it.
    (A predecessor walk can dead-end on a node that was never improved;
    then the rounds simply continue -- after ``n`` full rounds with
    updates the classical extraction from the last-updated node is
    guaranteed.)  This replaces the old two-pass shape where detection
    ran its rounds and witness extraction re-ran ``n`` full rounds from
    scratch.

    Kernel-shared on purpose: both kernels extract witnesses through
    this one routine, so the witness for a given digraph and ratio is
    identical across kernels by construction.
    """
    n = len(checker._nodes)
    if n == 0 or (not checker._messages and not checker._n_summaries):
        return None
    wtab = checker._weight_table(p, q)
    kinds = checker._kinds
    tails, heads = checker._tails, checker._heads
    m = len(tails)
    dist = [0] * n
    pred = [-1] * n  # H-edge index that last improved each node
    chain = [0] * n
    updated_node = -1
    for _ in range(n):
        updated_node = -1
        for eidx in range(m):
            tail = tails[eidx]
            nd = dist[tail] + wtab[kinds[eidx]]
            head = heads[eidx]
            if nd < dist[head]:
                dist[head] = nd
                pred[head] = eidx
                updated_node = head
                cu = chain[tail] + 1
                chain[head] = cu
                if cu >= n:
                    cycle = _cycle_from_predecessors(pred, tails, head, n)
                    if cycle is not None:
                        return cycle
        if updated_node < 0:
            return None
    # n rounds elapsed, each with an update: walk n predecessor links to
    # land on a cycle, then collect it (the classical extraction).
    node = updated_node
    for _ in range(n):
        eidx = pred[node]
        assert eidx >= 0
        node = tails[eidx]
    cycle = _cycle_from_predecessors(pred, tails, node, n)
    assert cycle is not None
    return cycle


def _cycle_from_predecessors(
    pred: list[int], tails: list[int], start: int, n: int
) -> list[int] | None:
    """Walk predecessor links from ``start`` until a node repeats, then
    collect the enclosed cycle; ``None`` if the walk dead-ends on a
    never-improved node first (at most ``n + 1`` links are followed --
    over ``n`` nodes a longer defined walk must repeat)."""
    seen = {start}
    node = start
    for _ in range(n + 1):
        eidx = pred[node]
        if eidx < 0:
            return None
        node = tails[eidx]
        if node in seen:
            break
        seen.add(node)
    else:  # pragma: no cover - pigeonhole makes this unreachable
        return None
    cycle_edges: list[int] = []
    cycle_start = node
    while True:
        eidx = pred[node]
        cycle_edges.append(eidx)
        node = tails[eidx]
        if node == cycle_start:
            break
    cycle_edges.reverse()
    return cycle_edges


class Kernel:
    """One checker's negative-cycle detection strategy.

    A kernel is bound to exactly one
    :class:`~repro.core.synchrony.AdmissibilityChecker` and may cache
    derived state between queries; the checker notifies it when the
    digraph shrinks (:meth:`notify_rollback`) or is renumbered
    (:meth:`notify_compact`).  Appends need no notification -- kernels
    discover them lazily from the append-only array lengths.  Kernels
    are never pickled: the checker drops its kernel on serialization and
    re-creates it lazily, which is what makes snapshots kernel-portable.
    """

    name = "abstract"

    def __init__(self, checker: "AdmissibilityChecker") -> None:
        self._checker = checker

    def has_negative_cycle(
        self, p: int, q: int, sources: list[int] | None = None
    ) -> bool:
        raise NotImplementedError

    def notify_rollback(self, n_nodes: int, n_edges: int) -> None:
        """The checker popped state back to ``n_nodes`` / ``n_edges``."""

    def notify_compact(self) -> None:
        """The checker renumbered its digraph (prefix compaction)."""


class PyObjectKernel(Kernel):
    """The reference kernel: today's SPFA over the checker's adjacency
    lists, no cached state.  Every other kernel is measured -- and
    proven -- against this one."""

    name = "py_object"

    def has_negative_cycle(
        self, p: int, q: int, sources: list[int] | None = None
    ) -> bool:
        return spfa_has_negative_cycle(self._checker, p, q, sources)


class FlatIntKernel(Kernel):
    """Exact integer kernel: clock-profile certificate + witness memo.

    See the module docstring for the design.  All state lives in flat
    parallel lists of plain Python integers, synced lazily from the
    checker's append-only arrays; rollbacks pop it in reverse, prefix
    compaction resets it wholesale (the first probe after a compaction
    pays one rebuild).

    The clock comparisons used while *maintaining* profiles are pinned
    to the ratio of the last rebuild (``_pin``); certificate
    *evaluation* at probe time always uses the probed ``(p, q, s)``
    exactly, so a pin mismatch can only cost speed.  A probe whose
    certificate fails twice in a row at the same un-pinned ratio
    triggers a re-pinned rebuild -- the pattern of the online monitor,
    whose probe ratio moves only when the running worst ratio does.
    """

    name = "flat_int"

    #: hard cap on clock raises per cascade (a divergence guard: with a
    #: negative cycle at the pin the least solution is infinite); an
    #: overrun leaves unsatisfied constraints as negative slacks, which
    #: simply demote affected probes to the reference relaxation run.
    _CASCADE_CAP = 512

    def __init__(self, checker: "AdmissibilityChecker") -> None:
        super().__init__(checker)
        self._reset()

    # -- lifecycle -----------------------------------------------------

    def _reset(self) -> None:
        self._nn = 0  # synced node count
        self._ne = 0  # synced edge count
        self._pf: list[int] = []  # node clock profiles
        self._pb: list[int] = []
        self._pl: list[int] = []
        self._out: list[list[int]] = []  # edge ids by tail
        self._in: list[list[int]] = []  # edge ids by head
        self._et: list[int] = []  # per-edge tail/head/kind copies
        self._eh: list[int] = []
        self._ek: list[int] = []
        self._ef: list[int] = []  # per-edge hop profiles
        self._eb: list[int] = []
        self._el: list[int] = []
        self._sf: list[int] = []  # per-edge slack profiles
        self._sb: list[int] = []
        self._sl: list[int] = []
        self._buckets: dict[tuple[int, int, int], int] = {}
        self._crit_lo: tuple[int, int] | None = None  # (db, df), df > 0
        self._crit_hi: tuple[int, int] | None = None  # (db, df), df < 0
        self._max_dl = 0
        self._n_always_bad = 0  # profiles negative at every ratio
        # The ratio the clock's lex comparisons are pinned at (moved by
        # convergent speculative re-pins; see has_negative_cycle).
        self._pin: tuple[int, int] | None = None
        # Witness memo: hop profile (F, B) of a known-present negative
        # cycle and the largest edge id it uses (for invalidation).
        self._wit: tuple[int, int] | None = None
        self._wit_max_eid = -1

    def notify_rollback(self, n_nodes: int, n_edges: int) -> None:
        if self._wit is not None and self._wit_max_eid >= n_edges:
            self._wit = None
        if self._ne > n_edges:
            sf, sb, sl = self._sf, self._sb, self._sl
            for eidx in range(self._ne - 1, n_edges - 1, -1):
                df, db, dl = sf[eidx], sb[eidx], sl[eidx]
                if not (df >= 0 and df >= db and dl <= 0):
                    self._bucket_remove((df, db, dl))
                # Edges append in index order, so eidx is the last
                # entry of both adjacency rows.
                self._out[self._et[eidx]].pop()
                self._in[self._eh[eidx]].pop()
            for arr in (
                self._et, self._eh, self._ek,
                self._ef, self._eb, self._el,
                sf, sb, sl,
            ):
                del arr[n_edges:]
            self._ne = n_edges
        if self._nn > n_nodes:
            for arr in (self._pf, self._pb, self._pl, self._out, self._in):
                del arr[n_nodes:]
            self._nn = n_nodes
        # Surviving clock values may sit above the least solution now --
        # still a lower-bound-feasible vector, so merely conservative.

    def notify_compact(self) -> None:
        # The digraph was renumbered wholesale; the first probe after
        # compaction pays one full rebuild.
        self._reset()

    # -- bucket bookkeeping --------------------------------------------

    def _bucket_add(self, triple: tuple[int, int, int]) -> None:
        buckets = self._buckets
        count = buckets.get(triple)
        if count:
            buckets[triple] = count + 1
            return
        buckets[triple] = 1
        df, db, dl = triple
        if dl > self._max_dl:
            self._max_dl = dl
        if df > 0:
            crit = self._crit_lo
            if crit is None or db * crit[1] > crit[0] * df:
                self._crit_lo = (db, df)
        elif df < 0:
            crit = self._crit_hi
            if crit is None or db * crit[1] < crit[0] * df:
                self._crit_hi = (db, df)
        else:
            # df == 0: the ratio term p*df - q*db is -q*db <= 0 for
            # db >= 0, so the profile is negative at *every* ratio when
            # db > 0, and -- because the _max_dl guard only protects
            # profiles whose ratio term is >= 1 -- also when db == 0
            # with dl > 0 (evaluation is exactly -dl there, independent
            # of s).  An unsettled clock (cascade cap, capped re-pin
            # passes) can legitimately leave such slacks behind.
            if db > 0 or (db == 0 and dl > 0):
                self._n_always_bad += 1

    def _bucket_remove(self, triple: tuple[int, int, int]) -> None:
        buckets = self._buckets
        count = buckets[triple]
        if count > 1:
            buckets[triple] = count - 1
            return
        del buckets[triple]
        df, db, dl = triple
        if df == 0 and (db > 0 or (db == 0 and dl > 0)):
            self._n_always_bad -= 1
        # _crit_lo / _crit_hi / _max_dl stay stale-wide; the next exact
        # sweep re-tightens them.

    def _retighten_window(self) -> None:
        self._crit_lo = None
        self._crit_hi = None
        self._max_dl = 0
        for df, db, dl in self._buckets:
            if dl > self._max_dl:
                self._max_dl = dl
            if df > 0:
                crit = self._crit_lo
                if crit is None or db * crit[1] > crit[0] * df:
                    self._crit_lo = (db, df)
            elif df < 0:
                crit = self._crit_hi
                if crit is None or db * crit[1] < crit[0] * df:
                    self._crit_hi = (db, df)

    # -- the certificate -----------------------------------------------

    def _window_passes(self, p: int, q: int, s: int) -> bool:
        """O(1) pre-check: ``True`` only if no tracked slack profile can
        evaluate negative at ``(p, q, s)`` -- conservatively (a
        ``False`` here just demotes to the exact sweep)."""
        if self._n_always_bad or self._max_dl >= s:
            return False
        crit = self._crit_lo
        if crit is not None and p * crit[1] <= q * crit[0]:
            return False
        crit = self._crit_hi
        if crit is not None and p * crit[1] <= q * crit[0]:
            return False
        return True

    def _sweep_clean(self, p: int, q: int, s: int) -> bool:
        """Exact sweep over the distinct tracked slack profiles: whether
        every one evaluates nonnegative at ``(p, q, s)``."""
        for df, db, dl in self._buckets:
            if s * (p * df - q * db) - dl < 0:
                return False
        self._retighten_window()
        return True

    # -- clock maintenance ---------------------------------------------

    def _raise_clock(self, node: int, raised: list[int]) -> None:
        """Cascade constraint raises from ``node`` (whose clock just
        rose): every in-edge ``(t, x)`` demands ``pi[t] >= pi[x] -
        w(e)``, so a raised head may force its tails up in turn --
        forward along causality for the backward/local edges (whose
        tails are newer events) and backward, damped by ``+p*s``, for
        the message-forward edges.  Every raised node lands on
        ``raised``."""
        pf, pb, pl = self._pf, self._pb, self._pl
        et = self._et
        ef, eb, el = self._ef, self._eb, self._el
        p, q = self._pin
        budget = self._CASCADE_CAP
        stack = [node]
        while stack:
            x = stack.pop()
            fx, bx, lx = pf[x], pb[x], pl[x]
            for eidx in self._in[x]:
                t = et[eidx]
                cf = fx - ef[eidx]
                cb = bx - eb[eidx]
                cl = lx - el[eidx]
                ca = p * cf - q * cb
                ta = p * pf[t] - q * pb[t]
                if ca < ta or (ca == ta and cl >= pl[t]):
                    continue  # candidate not lex-above the current clock
                pf[t], pb[t], pl[t] = cf, cb, cl
                raised.append(t)
                budget -= 1
                if budget <= 0:
                    return  # leftover negative slacks demote to SPFA
                stack.append(t)

    def _refresh_slacks(self, touched_nodes: list[int], limit: int) -> None:
        """Recompute the slack profiles of the already-indexed edges
        (index below ``limit``) incident to the touched nodes, moving
        bucket entries accordingly."""
        if not touched_nodes:
            return
        touched: set[int] = set()
        out, into = self._out, self._in
        if limit >= len(self._et):
            # Every indexed edge is below the limit (the case on the
            # one live call site, ``_sync``, which passes the post-
            # append edge count): update straight from the adjacency
            # lists at C speed instead of filtering element-wise.
            for v in set(touched_nodes):
                touched.update(out[v])
                touched.update(into[v])
        else:
            for v in set(touched_nodes):
                touched.update(e for e in out[v] if e < limit)
                touched.update(e for e in into[v] if e < limit)
        pf, pb, pl = self._pf, self._pb, self._pl
        sf, sb, sl = self._sf, self._sb, self._sl
        et, eh = self._et, self._eh
        ef, eb, el = self._ef, self._eb, self._el
        for eidx in touched:
            old_df, old_db, old_dl = sf[eidx], sb[eidx], sl[eidx]
            tail, head = et[eidx], eh[eidx]
            df = pf[tail] + ef[eidx] - pf[head]
            db = pb[tail] + eb[eidx] - pb[head]
            dl = pl[tail] + el[eidx] - pl[head]
            if df == old_df and db == old_db and dl == old_dl:
                continue
            if not (old_df >= 0 and old_df >= old_db and old_dl <= 0):
                self._bucket_remove((old_df, old_db, old_dl))
            sf[eidx], sb[eidx], sl[eidx] = df, db, dl
            if not (df >= 0 and df >= db and dl <= 0):
                self._bucket_add((df, db, dl))

    def _sync(self) -> None:
        """Absorb the checker's appended nodes/edges: assign clocks to
        new events, raise clocks for new lower bounds (cascading along
        the causal future for late edges), and index the new slacks."""
        checker = self._checker
        n_now = len(checker._nodes)
        pf, pb, pl = self._pf, self._pb, self._pl
        if n_now > self._nn:
            grow = n_now - self._nn
            pf.extend([0] * grow)
            pb.extend([0] * grow)
            pl.extend([0] * grow)
            self._out.extend([] for _ in range(grow))
            self._in.extend([] for _ in range(grow))
            self._nn = n_now
        m_now = len(checker._tails)
        if m_now <= self._ne:
            return
        if self._pin is None:
            # First contact: any pin works for soundness; the first
            # probe to miss the certificate re-pins at its own ratio.
            self._pin = (2, 1)
        tails, heads, kinds = checker._tails, checker._heads, checker._kinds
        summary_profiles = checker._summary_profiles
        et, eh, ek = self._et, self._eh, self._ek
        ef, eb, el = self._ef, self._eb, self._el
        et_app, eh_app, ek_app = et.append, eh.append, ek.append
        ef_app, eb_app, el_app = ef.append, eb.append, el.append
        out, into = self._out, self._in
        sf_app = self._sf.append
        sb_app = self._sb.append
        sl_app = self._sl.append
        bucket_add = self._bucket_add
        p, q = self._pin
        raised: list[int] = []
        # One fused pass: index each new edge, apply its clock raise,
        # and record its slack against the clocks as of its own append
        # (after a raise the slack is pf[tail] - cf, reusing the
        # candidate -- zero extra arithmetic, and exactly (0, 0, 0)
        # when the raise just fired).  Append order follows causality,
        # so raises flow forward; a raise on an already-wired node
        # cascades and lands on ``raised``, and the refresh at the end
        # re-derives every slack -- earlier in-batch ones included --
        # incident to a raised node.
        for eidx in range(self._ne, m_now):
            tail, head, kind = tails[eidx], heads[eidx], kinds[eidx]
            if kind == BWD_LOCAL:
                hf = hb = 0
                hl = 1
            elif kind == FWD_MESSAGE:
                hf, hb, hl = 1, 0, 0
            elif kind == BWD_MESSAGE:
                hf, hb, hl = 0, 1, 0
            else:
                hf, hb, hl = summary_profiles[kind - SUMMARY]
            et_app(tail)
            eh_app(head)
            ek_app(kind)
            ef_app(hf)
            eb_app(hb)
            el_app(hl)
            # The new constraint pi[tail] >= pi[head] - w: raise the
            # tail's clock to the candidate if it is lex-above.
            cf = pf[head] - hf
            cb = pb[head] - hb
            cl = pl[head] - hl
            ca = p * cf - q * cb
            ta = p * pf[tail] - q * pb[tail]
            if (ca > ta or (ca == ta and cl < pl[tail])) and tail != head:
                # (A self-loop never takes the raise -- no clock value
                # satisfies a lex-negative one, and the slack recorded
                # below must stay its hop profile, not the raised 0.)
                pf[tail], pb[tail], pl[tail] = cf, cb, cl
                if out[tail] or into[tail]:
                    # A raise on an already-wired tail: its existing
                    # slacks go stale and the raise may cascade through
                    # the affected cone.  (A fresh tail's raise needs
                    # neither -- this edge's slack is computed next,
                    # against the just-raised clock.)
                    raised.append(tail)
                    self._raise_clock(tail, raised)
            out[tail].append(eidx)
            into[head].append(eidx)
            df = pf[tail] - cf
            db = pb[tail] - cb
            dl = pl[tail] - cl
            sf_app(df)
            sb_app(db)
            sl_app(dl)
            if not (df >= 0 and df >= db and dl <= 0):
                bucket_add((df, db, dl))
        self._ne = m_now
        self._refresh_slacks(raised, m_now)

    def _repin(self, p: int, q: int) -> bool:
        """Speculatively recompute the clock fixpoint pinned at
        ``(p, q)`` from zero, committing -- new pin, slack profiles,
        buckets, window bounds -- only on convergence.

        Flat passes beat warm-starting from the old pin's fixpoint
        (measured): a pin move re-raises whole backward chains, and
        batch recomputation skips all per-raise adjacency scans and
        bucket moves.  Passes alternate direction -- backward/local
        constraints propagate with the append order (forward pass),
        message-forward constraints against it (reverse pass) -- so a
        few alternations reach the least solution when one exists; the
        tight cap is deliberate, because the probe discovering a
        genuine worst-ratio increase re-pins at a *violated* ratio
        where the fixpoint diverges outright.  Keeping the old pin in
        that case costs nothing (the relaxation run that follows seeds
        the witness memo) and preserves a certificate that still
        answers the monitor's successor stream."""
        n, m = self._nn, self._ne
        pf = [0] * n
        pb = [0] * n
        pl = [0] * n
        et, eh = self._et, self._eh
        ef, eb, el = self._ef, self._eb, self._el
        converged = False
        for sweep in range(4):
            changed = False
            order = range(m) if sweep % 2 == 0 else range(m - 1, -1, -1)
            for eidx in order:
                head = eh[eidx]
                tail = et[eidx]
                cf = pf[head] - ef[eidx]
                cb = pb[head] - eb[eidx]
                cl = pl[head] - el[eidx]
                ca = p * cf - q * cb
                ta = p * pf[tail] - q * pb[tail]
                if ca > ta or (ca == ta and cl < pl[tail]):
                    pf[tail], pb[tail], pl[tail] = cf, cb, cl
                    changed = True
            if not changed:
                converged = True
                break
        if not converged:
            return False
        self._pin = (p, q)
        self._pf, self._pb, self._pl = pf, pb, pl
        self._recompute_slacks()
        return True

    def _recompute_slacks(self) -> None:
        """Re-derive every slack profile, bucket, and window bound from
        the current clocks, flat."""
        m = self._ne
        pf, pb, pl = self._pf, self._pb, self._pl
        et, eh = self._et, self._eh
        ef, eb, el = self._ef, self._eb, self._el
        sf = self._sf = [0] * m
        sb = self._sb = [0] * m
        sl = self._sl = [0] * m
        self._buckets = {}
        self._crit_lo = None
        self._crit_hi = None
        self._max_dl = 0
        self._n_always_bad = 0
        bucket_add = self._bucket_add
        for eidx in range(m):
            tail, head = et[eidx], eh[eidx]
            df = pf[tail] + ef[eidx] - pf[head]
            db = pb[tail] + eb[eidx] - pb[head]
            dl = pl[tail] + el[eidx] - pl[head]
            sf[eidx] = df
            sb[eidx] = db
            sl[eidx] = dl
            if not (df >= 0 and df >= db and dl <= 0):
                bucket_add((df, db, dl))

    # -- detection -----------------------------------------------------

    def has_negative_cycle(
        self, p: int, q: int, sources: list[int] | None = None
    ) -> bool:
        checker = self._checker
        if len(checker._nodes) == 0 or (
            not checker._messages and not checker._n_summaries
        ):
            return False
        if p < q:
            # The certificate's safe-slack class (df >= max(db, 0),
            # dl <= 0) is only universally nonnegative for ratios >= 1,
            # the model's domain; answer out-of-domain probes exactly
            # via the reference loop.
            return spfa_has_negative_cycle(checker, p, q, sources)
        if len(checker._tails) != self._ne or len(checker._nodes) != self._nn:
            self._sync()
        wit = self._wit
        if wit is not None and sources is None and q * wit[1] >= p * wit[0]:
            # A recorded cycle with hop profile (F, B) and q*B >= p*F
            # has weight s*(p*F - q*B) - L < 0 at this query, and its
            # edges are all still present: True in O(1).
            return True
        s = checker._n_locals + checker._summary_locals + 1
        if self._window_passes(p, q, s) or self._sweep_clean(p, q, s):
            return False
        # Certificate failed at an un-pinned ratio: re-pin the clock
        # there (a few flat passes, cheaper than one relaxation run)
        # and re-evaluate.  With the fixpoint reached at the probed
        # pin the certificate is complete, so a clean probe converts
        # here; only genuine violations (where the pinned fixpoint
        # diverges, the pass cap trips, and the speculative re-pin
        # discards its passes) fall through to the relaxation run --
        # and those seed the witness memo, so a probe burst below the
        # worst ratio pays at most one run.
        if (p, q) != self._pin and self._repin(p, q):
            if self._window_passes(p, q, s) or self._sweep_clean(p, q, s):
                return False
        if sources is not None:
            return spfa_has_negative_cycle(checker, p, q, sources)
        return self._detect(p, q)

    def _detect(self, p: int, q: int) -> bool:
        """The reference SPFA over the kernel's flat arrays, plus
        predecessor recording so a chain-bound trip can seed the
        witness memo from the very run that found the cycle.

        (A slack-reweighted, seeded variant -- potentials confine the
        search to the violated region -- measured *slower* here: a
        violated ratio admits no feasible potential at all, so after
        the divergent capped re-pin the "region" is the whole digraph,
        and the seeded run tends to trip on a shallower cycle whose
        memo covers fewer later probes.)"""
        n = self._nn
        wtab = self._checker._weight_table(p, q)
        eh, ek = self._eh, self._ek
        out = self._out
        dist = [0] * n
        chain = [0] * n
        queued = [False] * n
        pred = [-1] * n
        active = [u for u in range(n) if out[u]]
        while active:
            next_active: list[int] = []
            push = next_active.append
            for u in active:
                du = dist[u]
                cu = chain[u] + 1
                for eidx in out[u]:
                    v = eh[eidx]
                    nd = du + wtab[ek[eidx]]
                    if nd < dist[v]:
                        if cu >= n:
                            pred[v] = eidx
                            self._record_witness(pred, v)
                            return True
                        dist[v] = nd
                        chain[v] = cu
                        pred[v] = eidx
                        if not queued[v]:
                            queued[v] = True
                            push(v)
            next_active.sort(reverse=True)
            active = next_active
            for v in active:
                queued[v] = False
        return False

    def _record_witness(self, pred: list[int], start: int) -> None:
        """Extract the negative cycle enclosed by the predecessor graph
        (every predecessor-graph cycle is negative: each link was a
        strict improvement when recorded) and memoize its hop profile;
        best-effort -- a dead-ended walk just leaves the memo empty."""
        cycle = _cycle_from_predecessors(pred, self._et, start, self._nn)
        if cycle is None:
            return
        ef, eb = self._ef, self._eb
        self._wit = (
            sum(ef[e] for e in cycle),
            sum(eb[e] for e in cycle),
        )
        self._wit_max_eid = max(cycle)


class VectorKernel(FlatIntKernel):
    """``flat_int`` with the exact certificate sweep vectorized over
    numpy when available.

    The sweep evaluates ``s*(p*df - q*db) - dl`` over the distinct
    tracked slack profiles; with numpy present and every magnitude
    provably inside int64 (guarded *before* the cast -- int64 overflow
    would be silent), the evaluation runs as three vector ops.  Without
    numpy, or for small sweeps, or near the overflow guard, it behaves
    exactly like :class:`FlatIntKernel` -- graceful degradation, never a
    different answer.
    """

    name = "vector"

    #: below this many distinct profiles the numpy round trip costs more
    #: than the plain loop.
    _MIN_VECTOR_SWEEP = 64
    _INT64_GUARD = 2**62

    def __init__(self, checker: "AdmissibilityChecker") -> None:
        try:
            import numpy
        except Exception:  # pragma: no cover - numpy genuinely optional
            numpy = None
        self._np = numpy
        self._rev = 0
        super().__init__(checker)

    def _reset(self) -> None:
        super()._reset()
        self._rev += 1
        self._cache_rev = -1
        self._cache_arrays: tuple | None = None
        self._cache_bound = 1

    def _bucket_add(self, triple: tuple[int, int, int]) -> None:
        self._rev += 1
        super()._bucket_add(triple)

    def _bucket_remove(self, triple: tuple[int, int, int]) -> None:
        self._rev += 1
        super()._bucket_remove(triple)

    def _sweep_clean(self, p: int, q: int, s: int) -> bool:
        np = self._np
        buckets = self._buckets
        if np is None or len(buckets) < self._MIN_VECTOR_SWEEP:
            return super()._sweep_clean(p, q, s)
        if self._cache_rev != self._rev:
            triples = list(buckets)
            bound = 1
            for df, db, dl in triples:
                mag = max(df, -df, db, -db, dl, -dl)
                if mag > bound:
                    bound = mag
            self._cache_bound = bound
            try:
                self._cache_arrays = (
                    np.array([t[0] for t in triples], dtype=np.int64),
                    np.array([t[1] for t in triples], dtype=np.int64),
                    np.array([t[2] for t in triples], dtype=np.int64),
                )
            except OverflowError:  # a profile itself beyond int64
                self._cache_arrays = None
            self._cache_rev = self._rev
        arrays = self._cache_arrays
        if (
            arrays is None
            or s * max(p, q) * (2 * self._cache_bound) >= self._INT64_GUARD
        ):
            return super()._sweep_clean(p, q, s)
        adf, adb, adl = arrays
        if bool(((s * (p * adf - q * adb) - adl) < 0).any()):
            return False
        self._retighten_window()
        return True


_KERNELS: dict[str, type[Kernel]] = {
    PyObjectKernel.name: PyObjectKernel,
    FlatIntKernel.name: FlatIntKernel,
    VectorKernel.name: VectorKernel,
}


def available_kernels() -> tuple[str, ...]:
    """The registered kernel names (reference kernel first)."""
    return tuple(_KERNELS)


def resolve_kernel_name(spec: str | None = None) -> str:
    """The kernel an explicit ``spec`` -- or, when ``None``, the ambient
    ``REPRO_KERNEL`` environment variable, or the default -- selects.

    Resolution happens at kernel *creation* (and again after unpickling
    a checker), which is what makes snapshots kernel-portable: a checker
    that never pinned a kernel explicitly follows the environment of
    whatever process restores it.
    """
    name = spec
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL
    if name not in _KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}"
        )
    return name


def make_kernel(spec: str | None, checker: "AdmissibilityChecker") -> Kernel:
    """Instantiate the kernel ``spec`` resolves to, bound to ``checker``."""
    return _KERNELS[resolve_kernel_name(spec)](checker)

"""Cycles in execution graphs and their classification (Definitions 2-3).

A *cycle* ``Z`` in an execution graph ``G`` is a subgraph corresponding to
a simple cycle in the undirected shadow graph of ``G`` (Definition 2).
Since the shadow graph is a multigraph (a self-message runs in parallel
with the local edges of its process), cycles are represented at the edge
level: a cyclic sequence of *steps*, each step being an edge together with
the direction in which the cycle traverses it.

Definition 3 partitions the edges of a cycle into forward and backward
classes by traversal direction, requires ``|Z+| <= |Z-|`` for the message
restrictions of the two classes, and calls a cycle *relevant* when all
local edges are backward.  :func:`classify` implements exactly that.

The exhaustive :func:`enumerate_cycles` is exponential and intended for
small graphs (tests, paper figures, cross-validation); the polynomial
admissibility checker lives in :mod:`repro.core.synchrony`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Sequence

from repro.core.events import Event
from repro.core.execution_graph import Edge, ExecutionGraph, MessageEdge

__all__ = [
    "Step",
    "Cycle",
    "CycleClassification",
    "classify",
    "enumerate_cycles",
    "relevant_cycles",
]

ALONG = 1
"""Direction flag: the step traverses its edge from ``src`` to ``dst``."""

AGAINST = -1
"""Direction flag: the step traverses its edge from ``dst`` to ``src``."""


@dataclass(frozen=True)
class Step:
    """One traversal step of a cycle: an edge plus traversal direction."""

    edge: Edge
    direction: int  # ALONG or AGAINST

    def __post_init__(self) -> None:
        if self.direction not in (ALONG, AGAINST):
            raise ValueError(f"direction must be +-1, got {self.direction}")

    @property
    def start(self) -> Event:
        return self.edge.src if self.direction == ALONG else self.edge.dst

    @property
    def end(self) -> Event:
        return self.edge.dst if self.direction == ALONG else self.edge.src

    def reversed(self) -> "Step":
        return Step(self.edge, -self.direction)


@dataclass(frozen=True)
class Cycle:
    """A closed walk of steps; simple cycles visit each event once.

    The step order defines the walk direction.  For a *relevant* cycle the
    canonical form produced by :func:`classify` walks along the cycle's
    orientation (forward edges traversed ``ALONG``-orientation).
    """

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        if len(self.steps) < 2:
            raise ValueError("a cycle needs at least two steps")
        for a, b in zip(self.steps, self.steps[1:] + self.steps[:1]):
            if a.end != b.start:
                raise ValueError(
                    f"steps do not form a closed walk: {a} then {b}"
                )

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(step.start for step in self.steps)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(step.edge for step in self.steps)

    def message_steps(self) -> tuple[Step, ...]:
        return tuple(s for s in self.steps if s.edge.is_message)

    def local_steps(self) -> tuple[Step, ...]:
        return tuple(s for s in self.steps if not s.edge.is_message)

    @property
    def length(self) -> int:
        """Number of messages in the cycle (chain length counts messages)."""
        return len(self.message_steps())

    def reversed(self) -> "Cycle":
        return Cycle(tuple(s.reversed() for s in reversed(self.steps)))

    def is_simple(self) -> bool:
        events = self.events
        return len(set(events)) == len(events)

    def canonical_key(self) -> frozenset[tuple[Edge, int]]:
        """A direction-insensitive identity for deduplication."""
        return frozenset((s.edge, 1) for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class CycleClassification:
    """The Definition 3 analysis of one cycle.

    Attributes:
        cycle: the cycle, re-walked along its orientation when one exists.
        relevant: whether all local edges are backward (``Z^+ = Zhat^+``).
        forward_messages: ``|Z+|`` under the chosen orientation.
        backward_messages: ``|Z-|`` under the chosen orientation.
    """

    cycle: Cycle
    relevant: bool
    forward_messages: int
    backward_messages: int

    @property
    def ratio(self) -> Fraction | None:
        """``|Z-| / |Z+|``, or ``None`` when no orientation satisfies (1).

        Only meaningful for relevant cycles: the ABC synchrony condition
        (Definition 4) requires ``ratio < Xi`` for every relevant cycle.
        """
        if self.forward_messages == 0:
            return None
        return Fraction(self.backward_messages, self.forward_messages)

    def violates(self, xi: Fraction | float | int) -> bool:
        """Whether this cycle violates the ABC condition for ``xi``."""
        if not self.relevant:
            return False
        ratio = self.ratio
        if ratio is None:  # pragma: no cover - impossible in valid graphs
            return True
        return ratio >= Fraction(xi)


def classify(cycle: Cycle) -> CycleClassification:
    """Classify a cycle per Definition 3.

    The walk direction of ``cycle`` splits its edges into the class
    traversed ``ALONG`` the walk and the class traversed ``AGAINST`` it.
    The *orientation* must be the direction of the forward class, subject
    to ``|Z+| <= |Z-|`` on messages; the cycle is relevant iff all local
    edges end up backward.  Concretely:

    * if local edges appear in both classes no orientation makes them all
      backward -> non-relevant;
    * if all local edges go against the walk, the orientation candidate is
      the walk direction; condition (1) then needs ``#msgs along <= #msgs
      against``;
    * symmetrically when all local edges go along the walk.

    A cycle consisting only of message edges cannot occur in a valid
    execution graph (each event has at most one incoming message, so such
    a cycle would be a directed cycle, contradicting acyclicity).
    """
    msgs_along = sum(1 for s in cycle.message_steps() if s.direction == ALONG)
    msgs_against = cycle.length - msgs_along
    local_dirs = {s.direction for s in cycle.local_steps()}

    if not local_dirs:
        raise ValueError(
            "cycle without local edges cannot occur in an execution graph"
        )
    if local_dirs == {ALONG, AGAINST}:
        # Local edges split between both classes: non-relevant under any
        # orientation.  Report counts for the orientation satisfying (1).
        fwd = min(msgs_along, msgs_against)
        bwd = max(msgs_along, msgs_against)
        oriented = cycle if msgs_along <= msgs_against else cycle.reversed()
        return CycleClassification(oriented, False, fwd, bwd)

    if local_dirs == {AGAINST}:
        # Candidate orientation = walk direction.
        if msgs_along <= msgs_against:
            return CycleClassification(cycle, True, msgs_along, msgs_against)
        # (1) forces the opposite orientation, turning locals forward.
        return CycleClassification(cycle.reversed(), False, msgs_against, msgs_along)

    # local_dirs == {ALONG}: mirror image of the previous case.
    if msgs_against <= msgs_along:
        return CycleClassification(cycle.reversed(), True, msgs_against, msgs_along)
    return CycleClassification(cycle, False, msgs_along, msgs_against)


def _incident_steps(graph: ExecutionGraph, event: Event) -> list[Step]:
    steps = [Step(e, ALONG) for e in graph.out_edges(event)]
    steps += [Step(e, AGAINST) for e in graph.in_edges(event)]
    return steps


def enumerate_cycles(
    graph: ExecutionGraph, max_length: int | None = None
) -> Iterator[Cycle]:
    """Enumerate all simple cycles of the undirected shadow multigraph.

    Exponential in general; meant for small graphs.  Each cycle is
    reported exactly once (up to direction and rotation): the enumeration
    roots every cycle at its smallest event and breaks the direction
    symmetry by comparing the first and last edges.

    Args:
        graph: the execution graph.
        max_length: optional bound on the number of steps per cycle.
    """
    edge_rank: dict[Edge, int] = {e: i for i, e in enumerate(graph.edges())}
    events = sorted(graph.events())

    def extend(
        root: Event,
        current: Event,
        walk: list[Step],
        visited: set[Event],
    ) -> Iterator[Cycle]:
        for step in _incident_steps(graph, current):
            nxt = step.end
            if max_length is not None and len(walk) + 1 > max_length:
                continue
            if nxt == root:
                if len(walk) >= 1 and step.edge != walk[0].edge:
                    if edge_rank[walk[0].edge] < edge_rank[step.edge]:
                        yield Cycle(tuple(walk + [step]))
                continue
            if nxt in visited or nxt < root:
                continue
            visited.add(nxt)
            walk.append(step)
            yield from extend(root, nxt, walk, visited)
            walk.pop()
            visited.remove(nxt)

    for root in events:
        yield from extend(root, root, [], {root})


def relevant_cycles(
    graph: ExecutionGraph, max_length: int | None = None
) -> Iterator[CycleClassification]:
    """All relevant cycles of ``graph`` (exhaustive; small graphs only)."""
    for cycle in enumerate_cycles(graph, max_length=max_length):
        info = classify(cycle)
        if info.relevant:
            yield info

"""Core ABC-model machinery: execution graphs, cycles, cuts, assignments.

This subpackage implements the paper's primary contribution in a
simulation-independent way: everything operates on
:class:`~repro.core.execution_graph.ExecutionGraph` objects, which can be
hand-crafted (:class:`~repro.core.execution_graph.GraphBuilder`) or
recorded from simulations (:mod:`repro.sim.trace`).
"""

from repro.core.chains import (
    chain_length,
    is_causal_chain,
    longest_chain_between,
    longest_incoming_chain,
)
from repro.core.cuts import (
    Cut,
    clock_values_at_cut,
    cut_interval,
    is_consistent_cut,
    left_closure,
    real_time_cut,
)
from repro.core.cycle_space import (
    CycleVector,
    combine,
    consistency,
    farkas_sum_property,
    mixed_free_decomposition,
    nonrelevant_sum_property,
    relevant_sum_property,
    vector_of,
    walk_vector,
)
from repro.core.cycles import (
    Cycle,
    CycleClassification,
    Step,
    classify,
    enumerate_cycles,
    relevant_cycles,
)
from repro.core.delay_assignment import (
    DelayAssignment,
    FarkasSystem,
    assignment_exists,
    build_farkas_system,
    canonical_solution,
    certificate_from_cycle_coefficients,
    farkas_certificate_value,
    max_margin,
    normalized_assignment,
    solve_farkas_lp,
    verify_normalized,
)
from repro.core.events import Event, ProcessId
from repro.core.kernel import (
    KERNEL_ENV_VAR,
    available_kernels,
    resolve_kernel_name,
)
from repro.core.execution_graph import (
    Edge,
    ExecutionGraph,
    GraphBuilder,
    LocalEdge,
    MessageEdge,
)
from repro.core.synchrony import (
    AdmissibilityChecker,
    AdmissibilityResult,
    CheckerCheckpoint,
    SummaryEdge,
    as_xi,
    check_abc,
    check_abc_exhaustive,
    farey_predecessor,
    farey_successor,
    find_violating_cycle,
    has_relevant_cycle_with_ratio_at_least,
    worst_relevant_ratio,
    worst_relevant_ratio_exhaustive,
)
from repro.core.visualize import to_ascii, to_dot
from repro.core.variants import (
    check_abc_forward_bounded,
    check_abc_length_restricted,
    check_eventual_abc,
    earliest_stabilization_cut,
    running_worst_ratio,
    suffix_graph,
    unknown_xi_infimum,
)

__all__ = [
    # events / graph
    "Event",
    "ProcessId",
    "Edge",
    "ExecutionGraph",
    "GraphBuilder",
    "LocalEdge",
    "MessageEdge",
    # chains
    "chain_length",
    "is_causal_chain",
    "longest_chain_between",
    "longest_incoming_chain",
    # cuts
    "Cut",
    "clock_values_at_cut",
    "cut_interval",
    "is_consistent_cut",
    "left_closure",
    "real_time_cut",
    # cycles
    "Cycle",
    "CycleClassification",
    "Step",
    "classify",
    "enumerate_cycles",
    "relevant_cycles",
    # kernels
    "KERNEL_ENV_VAR",
    "available_kernels",
    "resolve_kernel_name",
    # synchrony
    "AdmissibilityChecker",
    "AdmissibilityResult",
    "CheckerCheckpoint",
    "SummaryEdge",
    "as_xi",
    "check_abc",
    "check_abc_exhaustive",
    "farey_predecessor",
    "farey_successor",
    "find_violating_cycle",
    "has_relevant_cycle_with_ratio_at_least",
    "worst_relevant_ratio",
    "worst_relevant_ratio_exhaustive",
    # cycle space
    "CycleVector",
    "combine",
    "consistency",
    "farkas_sum_property",
    "mixed_free_decomposition",
    "nonrelevant_sum_property",
    "relevant_sum_property",
    "vector_of",
    "walk_vector",
    # delay assignment
    "DelayAssignment",
    "FarkasSystem",
    "assignment_exists",
    "build_farkas_system",
    "canonical_solution",
    "certificate_from_cycle_coefficients",
    "farkas_certificate_value",
    "max_margin",
    "normalized_assignment",
    "solve_farkas_lp",
    "verify_normalized",
    # visualization
    "to_ascii",
    "to_dot",
    # variants
    "check_abc_forward_bounded",
    "check_abc_length_restricted",
    "check_eventual_abc",
    "earliest_stabilization_cut",
    "running_worst_ratio",
    "suffix_graph",
    "unknown_xi_infimum",
]

"""Export execution graphs as Graphviz DOT or ASCII space-time diagrams.

Small tooling for inspecting executions: the DOT output mirrors the
paper's space-time figures (one horizontal rank per process, local edges
along the rank, message edges across), and the ASCII renderer gives a
quick terminal view of small graphs.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.cycles import CycleClassification
from repro.core.events import Event
from repro.core.execution_graph import ExecutionGraph

__all__ = ["to_dot", "to_ascii"]


def to_dot(
    graph: ExecutionGraph,
    highlight: CycleClassification | None = None,
    label_of: Callable[[Event], str] | None = None,
    times: Mapping[Event, float] | None = None,
) -> str:
    """Render the execution graph in Graphviz DOT format.

    Args:
        graph: the execution graph.
        highlight: optionally a classified cycle; its forward messages
            are drawn red, backward messages blue, and local edges bold.
        label_of: optional per-event label (defaults to ``p0:3`` ids).
        times: optional occurrence times appended to labels.
    """
    hi_forward = set()
    hi_backward = set()
    hi_local = set()
    if highlight is not None:
        from repro.core.cycles import ALONG

        for step in highlight.cycle.message_steps():
            (hi_forward if step.direction == ALONG else hi_backward).add(
                step.edge
            )
        for step in highlight.cycle.local_steps():
            hi_local.add(step.edge)

    def node_id(ev: Event) -> str:
        return f"e_{ev.process}_{ev.index}"

    def node_label(ev: Event) -> str:
        base = label_of(ev) if label_of is not None else repr(ev)
        if times is not None and ev in times:
            base += f"\\nt={times[ev]:.2f}"
        return base

    lines = [
        "digraph execution {",
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=10, width=0.35];',
    ]
    for p in graph.processes:
        events = graph.events_of(p)
        if not events:
            continue
        lines.append(f"  subgraph cluster_p{p} {{")
        lines.append(f'    label="process {p}"; style=invis;')
        lines.append("    rank=same;")
        for ev in events:
            lines.append(
                f'    {node_id(ev)} [label="{node_label(ev)}"];'
            )
        lines.append("  }")
    for loc in graph.local_edges:
        style = ' [style=bold, color=gray30]' if loc in hi_local else \
            " [color=gray60]"
        lines.append(f"  {node_id(loc.src)} -> {node_id(loc.dst)}{style};")
    for msg in graph.messages:
        if msg in hi_forward:
            attr = ' [color=red, penwidth=2, label="Z+"]'
        elif msg in hi_backward:
            attr = ' [color=blue, penwidth=2, label="Z-"]'
        else:
            attr = ""
        lines.append(f"  {node_id(msg.src)} -> {node_id(msg.dst)}{attr};")
    lines.append("}")
    return "\n".join(lines)


def to_ascii(graph: ExecutionGraph, width: int = 72) -> str:
    """A compact textual space-time view: one line per process, events in
    local order, plus one line per message."""
    lines = []
    for p in graph.processes:
        events = graph.events_of(p)
        cells = " -- ".join(f"[{ev.index}]" for ev in events)
        lines.append(f"p{p}: {cells}"[:width])
    lines.append("messages:")
    for msg in graph.messages:
        lines.append(f"  {msg.src!r} -> {msg.dst!r}")
    return "\n".join(lines)

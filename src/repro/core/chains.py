"""Causal chains (Definition 2) and chain-length computations.

A *causal chain* is a directed path in the execution graph; its *length*
``|D|`` is the number of messages (non-local edges) on it.  Chain lengths
drive the ABC failure-detection mechanism (Figure 3: a chain of ``2 Xi``
messages times out a missing reply) and Lemma 3 (a process with clock
``k + m`` sits at the end of a correct-process chain of length ``>= m``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.events import Event
from repro.core.execution_graph import Edge, ExecutionGraph

__all__ = [
    "is_causal_chain",
    "chain_length",
    "longest_incoming_chain",
    "longest_chain_between",
]


def is_causal_chain(graph: ExecutionGraph, events: Sequence[Event]) -> bool:
    """Whether the event sequence follows edges of the graph forward."""
    if not events:
        return False
    for a, b in zip(events, events[1:]):
        if not any(edge.dst == b for edge in graph.out_edges(a)):
            return False
    return True


def chain_length(graph: ExecutionGraph, events: Sequence[Event]) -> int:
    """``|D|``: the number of messages along the chain."""
    if not is_causal_chain(graph, events):
        raise ValueError("event sequence is not a causal chain of the graph")
    count = 0
    for a, b in zip(events, events[1:]):
        if any(e.dst == b and e.is_message for e in graph.out_edges(a)):
            count += 1
    return count


def longest_incoming_chain(graph: ExecutionGraph) -> dict[Event, int]:
    """For every event, the maximum message count over chains ending there.

    Computed by dynamic programming over a topological order; linear in
    the size of the graph.
    """
    longest: dict[Event, int] = {}
    for ev in graph.topological_order():
        best = 0
        for edge in graph.in_edges(ev):
            candidate = longest[edge.src] + (1 if edge.is_message else 0)
            best = max(best, candidate)
        longest[ev] = best
    return longest


def longest_chain_between(
    graph: ExecutionGraph, start: Event, end: Event
) -> int | None:
    """Maximum message count over chains ``start ->* end``; ``None`` if
    ``end`` is unreachable from ``start``."""
    if start not in graph or end not in graph:
        raise KeyError("both events must belong to the graph")
    best: dict[Event, int] = {start: 0}
    for ev in graph.topological_order():
        if ev not in best:
            continue
        for edge in graph.out_edges(ev):
            candidate = best[ev] + (1 if edge.is_message else 0)
            if candidate > best.get(edge.dst, -1):
                best[edge.dst] = candidate
    return best.get(end)

"""Receive events: the nodes of an execution graph.

The ABC model (Robinson & Schmid, Definition 1) represents an admissible
execution as a digraph whose nodes are the *receive events* of the
execution.  Because algorithms in the model are message driven with atomic
receive + compute + send steps, every send is attributed to the receive
event that triggered it, so receive events are the only nodes needed.

An event is identified by the process it occurs at and its index in the
total order of receive events at that process (the paper notes that there
is a total order on receive events at every process, even faulty ones).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessId", "Event"]

ProcessId = int
"""Processes are identified by small non-negative integers."""


@dataclass(frozen=True, order=True)
class Event:
    """A receive event ``phi`` at ``process``, the ``index``-th one there.

    Events are ordered lexicographically by ``(process, index)``; within a
    single process this coincides with the local happens-before order.

    Attributes:
        process: the process at which the event occurs.
        index: zero-based position among the receive events of ``process``.
    """

    process: ProcessId
    index: int

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process id must be >= 0, got {self.process}")
        if self.index < 0:
            raise ValueError(f"event index must be >= 0, got {self.index}")

    def local_predecessor(self) -> "Event | None":
        """The previous receive event at the same process, if any."""
        if self.index == 0:
            return None
        return Event(self.process, self.index - 1)

    def local_successor(self) -> "Event":
        """The next receive event at the same process."""
        return Event(self.process, self.index + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"p{self.process}:{self.index}"

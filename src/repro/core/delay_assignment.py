"""Delay assignments for ABC execution graphs (Theorems 7 and 12).

Theorem 7 is the technical heart of the paper's model-indistinguishability
result: every finite ABC-admissible execution graph admits a *normalized
assignment* ``tau`` of end-to-end delays with

    1 < tau(e) < Xi        for every message ``e``,            (4)
    0 < tau(ebar) < inf    for every local edge ``ebar``,      (5)

such that the weighted graph ``G^tau`` is causally equivalent to ``G``
(all cycle sums are zero).  Messages of ``G^tau`` then satisfy the
Theta-Model condition (3) for every ``Theta > Xi``.

Two constructions are provided:

* :func:`normalized_assignment` - the *potential* method.  Assign an
  occurrence time ``t(phi)`` to every event with ``1 + eps <= t(head) -
  t(tail) <= Xi - eps`` per message and ``t(head) - t(tail) >= eps`` per
  local edge.  Any potential zeroes every cycle sum automatically, so
  feasibility of this difference-constraint system (a Bellman-Ford
  shortest-path computation, done in exact rational arithmetic) is
  equivalent to the existence of a normalized assignment.  The margin
  ``eps`` is located by an LP (scipy) and certified exactly.

* :func:`build_farkas_system` - the explicit ``A x < b`` system of
  Figure 6, with one row per message bound and per cycle, solved via LP
  and accompanied by the canonical-solution machinery of Theorem 12
  (:func:`canonical_solution`, :func:`farkas_certificate_value`).  This
  reproduces Section 4.1 literally and is exponential, hence only for
  small graphs.

Implementation note on the cycle rows: a cycle constrains the message
weights only when all its local edges lie in one traversal class.  For a
relevant cycle (all local edges backward) the zero-sum condition forces
condition (6); for the mirror-image cycles whose local edges are all
forward under the Definition-3 orientation (non-relevant because (1)
flipped the orientation), it forces the sign-swapped inequality - these
are the paper's non-relevant rows, cp. Figure 4.  Cycles whose local
edges appear in *both* classes impose no sign constraint on the message
weights (their zero-sum can always be balanced by choosing the positive
local weights on either side), so they contribute no row.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

import numpy as np
from scipy.optimize import linprog

from repro.core.cycles import AGAINST, Cycle, classify, enumerate_cycles
from repro.core.events import Event
from repro.core.execution_graph import Edge, ExecutionGraph, MessageEdge
from repro.core.synchrony import check_abc

__all__ = [
    "DelayAssignment",
    "normalized_assignment",
    "assignment_exists",
    "verify_normalized",
    "max_margin",
    "FarkasSystem",
    "build_farkas_system",
    "solve_farkas_lp",
    "canonical_solution",
    "farkas_certificate_value",
]


@dataclass(frozen=True)
class DelayAssignment:
    """A normalized assignment ``tau`` together with its potential.

    Attributes:
        times: exact rational occurrence time per event (the potential).
        xi: the synchrony parameter the assignment was built for.
        epsilon: the certified margin: every message delay lies in
            ``[1 + epsilon, Xi - epsilon]`` and every local delay is at
            least ``epsilon``.
    """

    times: Mapping[Event, Fraction]
    xi: Fraction
    epsilon: Fraction

    def delay(self, edge: Edge) -> Fraction:
        """``tau(e)``: the assigned end-to-end delay of an edge."""
        return self.times[edge.dst] - self.times[edge.src]

    def delays(self, graph: ExecutionGraph) -> dict[Edge, Fraction]:
        return {edge: self.delay(edge) for edge in graph.edges()}

    def message_delay_ratio(self, graph: ExecutionGraph) -> Fraction | None:
        """``max tau / min tau`` over messages: the effective Theta."""
        delays = [self.delay(m) for m in graph.messages]
        if not delays:
            return None
        return max(delays) / min(delays)


def _feasible_potential(
    graph: ExecutionGraph, xi: Fraction, eps: Fraction
) -> dict[Event, Fraction] | None:
    """Solve the difference-constraint system at a fixed margin ``eps``.

    Constraints (as ``t[v] - t[u] <= c`` edges of a constraint graph):

    * message ``u -> v``: ``t[v] - t[u] <= Xi - eps`` and
      ``t[u] - t[v] <= -(1 + eps)``;
    * local edge ``u -> v``: ``t[u] - t[v] <= -eps``.

    Bellman-Ford from a virtual source in exact rational arithmetic;
    returns the potential or ``None`` on a negative cycle (infeasible).
    """
    events = list(graph.events())
    index = {ev: i for i, ev in enumerate(events)}
    constraint_edges: list[tuple[int, int, Fraction]] = []
    upper = xi - eps
    lower = -(Fraction(1) + eps)
    for m in graph.messages:
        u, v = index[m.src], index[m.dst]
        constraint_edges.append((u, v, upper))
        constraint_edges.append((v, u, lower))
    for loc in graph.local_edges:
        u, v = index[loc.src], index[loc.dst]
        constraint_edges.append((v, u, -eps))

    n = len(events)
    dist = [Fraction(0)] * n
    for _ in range(n):
        changed = False
        for tail, head, weight in constraint_edges:
            candidate = dist[tail] + weight
            if candidate < dist[head]:
                dist[head] = candidate
                changed = True
        if not changed:
            return {ev: dist[index[ev]] for ev in events}
    return None


def max_margin(graph: ExecutionGraph, xi: Fraction | int | float) -> float:
    """The LP-optimal margin ``eps*`` of the potential system (float).

    Positive iff a normalized assignment exists (iff the graph is
    ABC-admissible for ``xi``).  Used to pick a good rational ``eps`` for
    the exact construction in :func:`normalized_assignment`.
    """
    xi_frac = Fraction(xi)
    events = list(graph.events())
    index = {ev: i for i, ev in enumerate(events)}
    n = len(events)
    # Variables: t_0 .. t_{n-1}, eps.  Maximize eps.
    rows: list[list[float]] = []
    rhs: list[float] = []

    def add(con: dict[int, float], eps_coeff: float, bound: float) -> None:
        row = [0.0] * (n + 1)
        for var, coeff in con.items():
            row[var] = coeff
        row[n] = eps_coeff
        rows.append(row)
        rhs.append(bound)

    for m in graph.messages:
        u, v = index[m.src], index[m.dst]
        add({v: 1.0, u: -1.0}, 1.0, float(xi_frac))     # t_v - t_u + eps <= Xi
        add({u: 1.0, v: -1.0}, 1.0, -1.0)               # t_u - t_v + eps <= -1
    for loc in graph.local_edges:
        u, v = index[loc.src], index[loc.dst]
        add({u: 1.0, v: -1.0}, 1.0, 0.0)                # t_u - t_v + eps <= 0
    if not rows:
        return float(xi_frac - 1) / 2
    c = [0.0] * n + [-1.0]  # maximize eps
    bounds = [(None, None)] * n + [(0.0, float(xi_frac - 1) / 2)]
    result = linprog(c, A_ub=np.array(rows), b_ub=np.array(rhs), bounds=bounds,
                     method="highs")
    if not result.success:
        return 0.0
    return float(result.x[-1])


def normalized_assignment(
    graph: ExecutionGraph, xi: Fraction | int | float
) -> DelayAssignment | None:
    """An exact normalized assignment for ``graph``, or ``None``.

    By Theorem 7 the result is not ``None`` exactly when the graph is
    ABC-admissible for ``xi`` (both directions are enforced by the test
    suite).  The returned potential is exact: every constraint holds in
    rational arithmetic with margin at least ``epsilon``.
    """
    xi_frac = Fraction(xi)
    if xi_frac <= 1:
        raise ValueError(f"the ABC model requires Xi > 1, got {xi_frac}")
    eps_star = max_margin(graph, xi_frac)
    candidates = []
    if eps_star > 0:
        candidates.append(Fraction(eps_star).limit_denominator(10**9) / 2)
    # Fallback halving search in case the LP margin was optimistic.
    fallback = (xi_frac - 1) / 4
    for _ in range(8):
        candidates.append(fallback)
        fallback /= 16
    for eps in candidates:
        if eps <= 0:
            continue
        times = _feasible_potential(graph, xi_frac, eps)
        if times is not None:
            return DelayAssignment(times, xi_frac, eps)
    return None


def assignment_exists(
    graph: ExecutionGraph, xi: Fraction | int | float
) -> bool:
    """Whether a normalized assignment exists (Theorem 7's conclusion)."""
    return normalized_assignment(graph, xi) is not None


def verify_normalized(
    graph: ExecutionGraph,
    assignment: DelayAssignment,
    check_cycle_sums: bool = False,
) -> bool:
    """Check conditions (4) and (5) exactly; optionally re-verify that all
    enumerated cycle sums vanish (they do by construction for potentials;
    the flag exists for cross-validation on small graphs)."""
    xi = assignment.xi
    for m in graph.messages:
        tau = assignment.delay(m)
        if not (1 < tau < xi):
            return False
    for loc in graph.local_edges:
        if assignment.delay(loc) <= 0:
            return False
    if check_cycle_sums:
        for cycle in enumerate_cycles(graph):
            total = Fraction(0)
            for step in cycle.steps:
                total += step.direction * assignment.delay(step.edge)
            if total != 0:
                return False
    return True


# ----------------------------------------------------------------------
# The explicit Farkas system of Figure 6 (Section 4.1)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FarkasSystem:
    """The linear system ``A x < b`` of Figure 6.

    Rows: ``k`` lower bounds (``-tau(e) < -1``), ``k`` upper bounds
    (``tau(e) < Xi``), ``l`` relevant-cycle rows (condition (6)) and ``m``
    non-relevant-cycle rows (sign-flipped (6)).  Columns: one per message.

    Attributes:
        matrix: the ``(2k + l + m) x k`` coefficient matrix ``A``.
        rhs: the right-hand side ``b``.
        messages: column order.
        n_relevant / n_nonrelevant: the counts ``l`` and ``m``.
    """

    matrix: np.ndarray
    rhs: np.ndarray
    messages: tuple[MessageEdge, ...]
    n_relevant: int
    n_nonrelevant: int
    xi: Fraction

    @property
    def n_messages(self) -> int:
        return len(self.messages)

    def cycle_rows(self) -> np.ndarray:
        """The cycle part of ``A`` (relevant rows first)."""
        return self.matrix[2 * self.n_messages :]


def build_farkas_system(
    graph: ExecutionGraph,
    xi: Fraction | int | float,
    max_cycle_length: int | None = None,
) -> FarkasSystem:
    """Construct the explicit system of Figure 6 (small graphs only).

    Cycle rows are generated for every enumerated cycle whose local edges
    all lie in one traversal class (see the module docstring): relevant
    cycles contribute ``+1`` per backward / ``-1`` per forward message
    (condition (6)); all-locals-forward cycles contribute the sign-flipped
    row.  Messages on no such cycle are still bounded by the ``2k`` box
    rows.
    """
    xi_frac = Fraction(xi)
    messages = graph.messages
    col = {m: i for i, m in enumerate(messages)}
    k = len(messages)
    relevant_rows: list[np.ndarray] = []
    nonrelevant_rows: list[np.ndarray] = []
    for cycle in enumerate_cycles(graph, max_length=max_cycle_length):
        info = classify(cycle)
        local_dirs = {s.direction for s in info.cycle.local_steps()}
        if len(local_dirs) != 1:
            continue  # mixed-local cycles impose no sign constraint
        row = np.zeros(k)
        for step in info.cycle.message_steps():
            row[col[step.edge]] += 1 if step.direction == AGAINST else -1
        if info.relevant:
            relevant_rows.append(row)
        else:
            # Locals all forward under the Definition-3 orientation: the
            # canonical walk has them ALONG, so flip to get the row.
            nonrelevant_rows.append(-row)
    lower = -np.eye(k)
    upper = np.eye(k)
    blocks = [lower, upper]
    if relevant_rows:
        blocks.append(np.array(relevant_rows))
    if nonrelevant_rows:
        blocks.append(np.array(nonrelevant_rows))
    matrix = np.vstack(blocks) if k else np.zeros((0, 0))
    rhs = np.concatenate(
        [
            -np.ones(k),
            np.full(k, float(xi_frac)),
            np.zeros(len(relevant_rows) + len(nonrelevant_rows)),
        ]
    )
    return FarkasSystem(
        matrix, rhs, messages, len(relevant_rows), len(nonrelevant_rows), xi_frac
    )


def solve_farkas_lp(system: FarkasSystem) -> np.ndarray | None:
    """A strict solution of ``A x < b`` via a maximized slack, or ``None``.

    Solves ``A x <= b - eps`` with ``eps`` maximized; a positive optimum
    certifies strict feasibility (Theorem 12).
    """
    n = system.n_messages
    if n == 0:
        return np.zeros(0)
    a_ub = np.hstack([system.matrix, np.ones((system.matrix.shape[0], 1))])
    c = np.zeros(n + 1)
    c[-1] = -1.0
    bounds = [(None, None)] * n + [(0.0, float(system.xi))]
    result = linprog(c, A_ub=a_ub, b_ub=system.rhs, bounds=bounds, method="highs")
    if not result.success or result.x[-1] <= 1e-9:
        return None
    return result.x[:-1]


def canonical_solution(system: FarkasSystem, y: np.ndarray) -> np.ndarray:
    """The canonical certificate ``ybar`` of Theorem 12.

    Given ``y >= 0`` with ``y^T A = 0``, produce ``ybar`` with the same
    cycle coefficients, complementary upper coefficients (``ybar_j = 0``
    or ``ybar_{k+j} = 0``) and integer entries (after clearing rational
    denominators the caller is responsible for; the construction here
    keeps the values as given).
    """
    k = system.n_messages
    y = np.asarray(y, dtype=float)
    if y.shape[0] != system.matrix.shape[0]:
        raise ValueError("certificate length does not match the system")
    ybar = y.copy()
    for j in range(k):
        low, up = y[j], y[k + j]
        if low > up:
            ybar[j], ybar[k + j] = low - up, 0.0
        else:
            ybar[j], ybar[k + j] = 0.0, up - low
    return ybar


def farkas_certificate_value(system: FarkasSystem, y: np.ndarray) -> float:
    """``y^T b``; Theorem 10 (Carver) requires this to be positive for all
    ``y > 0`` with ``y^T A = 0`` when ``A x < b`` is solvable."""
    return float(np.dot(np.asarray(y, dtype=float), system.rhs))


def certificate_from_cycle_coefficients(
    system: FarkasSystem, cycle_coefficients: Iterable[float]
) -> np.ndarray:
    """Build ``y >= 0`` with ``y^T A = 0`` from given cycle multipliers.

    Equation (7) determines the upper coefficients from the combined
    cycle row ``s``: ``y_{k+j} - y_j + s_j = 0`` with the canonical choice
    ``y_j = max(s_j, 0)`` and ``y_{k+j} = max(-s_j, 0)``.  This is how the
    test-suite generates arbitrarily many Farkas certificates to check
    Lemmas 7 and 11 against the matrix.
    """
    coeffs = np.asarray(list(cycle_coefficients), dtype=float)
    n_cycles = system.n_relevant + system.n_nonrelevant
    if coeffs.shape[0] != n_cycles:
        raise ValueError(f"expected {n_cycles} cycle coefficients")
    if np.any(coeffs < 0):
        raise ValueError("cycle coefficients must be non-negative")
    k = system.n_messages
    s = coeffs @ system.cycle_rows() if n_cycles else np.zeros(k)
    y = np.zeros(2 * k + n_cycles)
    y[:k] = np.maximum(s, 0.0)
    y[k : 2 * k] = np.maximum(-s, 0.0)
    y[2 * k :] = coeffs
    return y

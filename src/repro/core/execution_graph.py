"""Execution graphs (Definition 1 of the paper).

The execution graph ``G_alpha`` of an admissible execution ``alpha`` is the
digraph corresponding to the space-time diagram of ``alpha``:

* nodes are the receive events of ``alpha``;
* a *non-local edge* (a "message") connects the receive event that
  triggered the sending step to the receive event of the sent message;
* a *local edge* connects consecutive receive events at the same process.

Messages sent by faulty processes are dropped from the graph (along with
their receive events) before it is analysed — see Section 2 of the paper.
That filtering happens in :mod:`repro.sim.trace` when a graph is built from
a recorded simulation; this module only deals with the resulting digraph.

The graph must be acyclic as a digraph (messages cannot be sent backwards
in time), and every event may have at most one incoming message edge
(computing steps are triggered by exactly one message; events without an
incoming message are externally triggered wake-ups or receive events whose
triggering message was dropped because its sender is faulty).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.events import Event, ProcessId

__all__ = [
    "MessageEdge",
    "LocalEdge",
    "Edge",
    "ExecutionGraph",
    "GraphBuilder",
]


@dataclass(frozen=True, order=True)
class MessageEdge:
    """A non-local edge: a message from the step at ``src`` to event ``dst``."""

    src: Event
    dst: Event

    @property
    def is_message(self) -> bool:
        return True

    def endpoints(self) -> tuple[Event, Event]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"msg({self.src!r}->{self.dst!r})"


@dataclass(frozen=True, order=True)
class LocalEdge:
    """A local edge between consecutive receive events at one process."""

    src: Event
    dst: Event

    @property
    def is_message(self) -> bool:
        return False

    def endpoints(self) -> tuple[Event, Event]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"loc({self.src!r}->{self.dst!r})"


Edge = MessageEdge | LocalEdge


class ExecutionGraph:
    """An immutable execution graph per Definition 1.

    Construct instances through :class:`GraphBuilder` (for hand-crafted
    scenarios and tests) or :func:`repro.sim.trace.build_execution_graph`
    (from a recorded simulation).
    """

    def __init__(
        self,
        events_by_process: Mapping[ProcessId, Sequence[Event]],
        messages: Iterable[MessageEdge],
    ) -> None:
        self._events_by_process: dict[ProcessId, tuple[Event, ...]] = {
            p: tuple(evs) for p, evs in sorted(events_by_process.items())
        }
        self._messages: tuple[MessageEdge, ...] = tuple(sorted(set(messages)))
        self._validate()
        self._local_edges: tuple[LocalEdge, ...] = tuple(
            LocalEdge(a, b)
            for evs in self._events_by_process.values()
            for a, b in zip(evs, evs[1:])
        )
        self._out: dict[Event, list[Edge]] = defaultdict(list)
        self._in: dict[Event, list[Edge]] = defaultdict(list)
        for edge in self.edges():
            self._out[edge.src].append(edge)
            self._in[edge.dst].append(edge)
        self._assert_acyclic()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def processes(self) -> tuple[ProcessId, ...]:
        """Processes that have at least a declared event sequence."""
        return tuple(self._events_by_process)

    def events_of(self, process: ProcessId) -> tuple[Event, ...]:
        """Receive events of ``process`` in local order."""
        return self._events_by_process.get(process, ())

    def events(self) -> Iterator[Event]:
        """All events, grouped by process in local order."""
        for evs in self._events_by_process.values():
            yield from evs

    @property
    def n_events(self) -> int:
        return sum(len(evs) for evs in self._events_by_process.values())

    @property
    def messages(self) -> tuple[MessageEdge, ...]:
        """All non-local edges."""
        return self._messages

    @property
    def local_edges(self) -> tuple[LocalEdge, ...]:
        return self._local_edges

    def edges(self) -> Iterator[Edge]:
        yield from self._local_edges
        yield from self._messages

    @property
    def n_edges(self) -> int:
        return len(self._local_edges) + len(self._messages)

    def out_edges(self, event: Event) -> tuple[Edge, ...]:
        return tuple(self._out.get(event, ()))

    def in_edges(self, event: Event) -> tuple[Edge, ...]:
        return tuple(self._in.get(event, ()))

    def trigger_of(self, event: Event) -> MessageEdge | None:
        """The message whose reception is ``event``, or ``None``.

        ``None`` means the event is externally triggered (the wake-up that
        starts a process) or that its triggering message was dropped
        because it was sent by a faulty process.
        """
        for edge in self._in.get(event, ()):
            if edge.is_message:
                return edge
        return None

    def __contains__(self, event: Event) -> bool:
        evs = self._events_by_process.get(event.process, ())
        return event.index < len(evs)

    # ------------------------------------------------------------------
    # causality
    # ------------------------------------------------------------------

    def causal_past(self, events: Iterable[Event]) -> frozenset[Event]:
        """The left closure of ``events`` under the reflexive-transitive
        happens-before relation (the ``<events>`` of Definition 6)."""
        seed = list(events)
        for ev in seed:
            if ev not in self:
                raise KeyError(f"event {ev!r} not in graph")
        seen: set[Event] = set()
        stack = list(seed)
        while stack:
            ev = stack.pop()
            if ev in seen:
                continue
            seen.add(ev)
            for edge in self._in.get(ev, ()):
                if edge.src not in seen:
                    stack.append(edge.src)
        return frozenset(seen)

    def causal_future(self, events: Iterable[Event]) -> frozenset[Event]:
        """All events reachable from ``events`` (reflexive)."""
        seen: set[Event] = set()
        stack = [ev for ev in events]
        for ev in stack:
            if ev not in self:
                raise KeyError(f"event {ev!r} not in graph")
        while stack:
            ev = stack.pop()
            if ev in seen:
                continue
            seen.add(ev)
            for edge in self._out.get(ev, ()):
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return frozenset(seen)

    def happens_before(self, a: Event, b: Event) -> bool:
        """Reflexive-transitive reachability ``a ->* b``."""
        return a in self.causal_past([b])

    def topological_order(self) -> list[Event]:
        """Events in some topological order of the digraph."""
        indeg = {ev: len(self._in.get(ev, ())) for ev in self.events()}
        queue = deque(sorted(ev for ev, d in indeg.items() if d == 0))
        order: list[Event] = []
        while queue:
            ev = queue.popleft()
            order.append(ev)
            for edge in self._out.get(ev, ()):
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    queue.append(edge.dst)
        return order

    # ------------------------------------------------------------------
    # prefixes
    # ------------------------------------------------------------------

    def prefix(self, events: Iterable[Event]) -> "ExecutionGraph":
        """The execution graph restricted to the left closure of ``events``.

        Model indistinguishability (Section 4) reasons about finite
        prefixes of executions; a prefix of an execution graph is again an
        execution graph.
        """
        keep = self.causal_past(events)
        by_process: dict[ProcessId, list[Event]] = defaultdict(list)
        for ev in sorted(keep):
            by_process[ev.process].append(ev)
        messages = [m for m in self._messages if m.src in keep and m.dst in keep]
        return ExecutionGraph(by_process, messages)

    def restricted_to_messages(
        self, keep: Iterable[MessageEdge]
    ) -> "ExecutionGraph":
        """A copy of the graph with only the given message edges retained.

        Section 2 notes that dropping messages from the space-time diagram
        can be used to exempt certain messages from the ABC synchrony
        condition; Section 6 uses the same device for length-restricted
        variants.  Events are kept unchanged.
        """
        keep_set = set(keep)
        for edge in keep_set:
            if edge not in self._messages:
                raise KeyError(f"{edge!r} is not a message of this graph")
        return ExecutionGraph(self._events_by_process, keep_set)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        for process, evs in self._events_by_process.items():
            for i, ev in enumerate(evs):
                if ev.process != process or ev.index != i:
                    raise ValueError(
                        f"event sequence of process {process} must be "
                        f"Event({process}, 0..n-1); found {ev!r} at slot {i}"
                    )
        all_events = {ev for evs in self._events_by_process.values() for ev in evs}
        incoming: set[Event] = set()
        for edge in self._messages:
            if edge.src not in all_events or edge.dst not in all_events:
                raise ValueError(f"message {edge!r} references unknown event")
            if edge.src == edge.dst:
                raise ValueError(f"message {edge!r} may not be a self loop")
            if edge.dst in incoming:
                raise ValueError(
                    f"event {edge.dst!r} has more than one incoming message; "
                    "computing steps are triggered by exactly one message"
                )
            incoming.add(edge.dst)

    def _assert_acyclic(self) -> None:
        if len(self.topological_order()) != self.n_events:
            raise ValueError(
                "execution graph contains a directed cycle; messages cannot "
                "be sent backwards in time"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionGraph(processes={len(self._events_by_process)}, "
            f"events={self.n_events}, messages={len(self._messages)})"
        )


@dataclass
class GraphBuilder:
    """Convenience builder for hand-crafted execution graphs.

    Events are created implicitly: ``event(p, i)`` declares that process
    ``p`` has at least ``i + 1`` receive events.  Messages are added
    between declared events.  ``build()`` validates and freezes the graph.

    Example (two ping-pong messages between processes 0 and 1)::

        b = GraphBuilder()
        b.message((0, 0), (1, 0))
        b.message((1, 0), (0, 1))
        g = b.build()
    """

    _n_events: dict[ProcessId, int] = field(default_factory=dict)
    _messages: list[MessageEdge] = field(default_factory=list)

    def event(self, process: ProcessId, index: int) -> Event:
        """Declare (idempotently) the event ``index`` at ``process``."""
        current = self._n_events.get(process, 0)
        self._n_events[process] = max(current, index + 1)
        return Event(process, index)

    def events(self, process: ProcessId, count: int) -> list[Event]:
        """Declare ``count`` consecutive events at ``process``."""
        return [self.event(process, i) for i in range(count)]

    def message(
        self,
        src: tuple[ProcessId, int] | Event,
        dst: tuple[ProcessId, int] | Event,
    ) -> MessageEdge:
        """Add a message edge; endpoints may be ``(process, index)`` pairs."""
        src_ev = src if isinstance(src, Event) else self.event(*src)
        dst_ev = dst if isinstance(dst, Event) else self.event(*dst)
        if isinstance(src, Event):
            self.event(src.process, src.index)
        if isinstance(dst, Event):
            self.event(dst.process, dst.index)
        edge = MessageEdge(src_ev, dst_ev)
        self._messages.append(edge)
        return edge

    def chain(
        self, hops: Sequence[tuple[ProcessId, int]]
    ) -> list[MessageEdge]:
        """Add a causal chain of messages through the given events."""
        return [
            self.message(a, b) for a, b in zip(hops, hops[1:])
        ]

    def build(self) -> ExecutionGraph:
        events_by_process = {
            p: [Event(p, i) for i in range(n)]
            for p, n in sorted(self._n_events.items())
        }
        return ExecutionGraph(events_by_process, self._messages)
